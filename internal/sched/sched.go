// Package sched implements the execution-layer scheduling machinery of §4.3:
// bid ranking for the Figure 3 protocol, placement policies (the
// throughput-first policy of the paper against a per-job greedy baseline),
// and the aging priority queue that prevents starvation ("as a task waits to
// be dispatched its priority will be increased to insure it will eventually
// be dispatched even if that results in a globally suboptimal schedule").
package sched

import (
	"sort"
	"time"

	"vce/internal/arch"
	"vce/internal/taskgraph"
)

// Bid is one daemon's answer in the bidding protocol: "Each bid includes the
// current load of the bidding machine" (§5).
type Bid struct {
	// Machine is the bidding machine's name.
	Machine string
	// Load is the machine's current load (runnable work per unit
	// capacity; 0 is idle).
	Load float64
	// Capacity is how many additional VCE tasks the machine will accept.
	Capacity int
}

// RankBids orders bids by ascending load (ties by name) — the prototype
// group leader's sortBidsByLoad.
func RankBids(bids []Bid) []Bid {
	out := append([]Bid(nil), bids...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load < out[j].Load
		}
		return out[i].Machine < out[j].Machine
	})
	return out
}

// SelectBest picks machines for n task instances from the ranked bids,
// honouring per-bid capacity. Allocation is breadth-first across the ranking
// — one instance per machine per pass, least-loaded first — so multiple
// instances spread over "the least loaded processors" (plural, §5) instead
// of piling onto the single best bidder. ok=false reproduces the prototype's
// allocation failure: "If the group leader receives fewer responses than
// needed a failure indication is sent to the execution program."
func SelectBest(bids []Bid, n int) (machines []string, ok bool) {
	ranked := RankBids(bids)
	remaining := make([]int, len(ranked))
	total := 0
	for i, b := range ranked {
		remaining[i] = b.Capacity
		total += b.Capacity
	}
	for len(machines) < n && total > 0 {
		for i := range ranked {
			if len(machines) == n {
				break
			}
			if remaining[i] > 0 {
				remaining[i]--
				total--
				machines = append(machines, ranked[i].Machine)
			}
		}
	}
	return machines, len(machines) == n
}

// MachineState is a scheduler's snapshot of one machine.
type MachineState struct {
	// Machine is the hardware description.
	Machine arch.Machine
	// Load is current utilization (local + remote demand).
	Load float64
	// Slots is how many additional tasks this machine accepts in this
	// placement round.
	Slots int
	// Index is an optional caller-assigned dense id (e.g. the simulator's
	// Machine.Index). It powers the hash-free Item.CandidateIDs fast path;
	// callers that don't use CandidateIDs can leave it zero.
	Index int

	// scarce is UtilizationFirst's internal reservation count: waiting
	// constrained items for which this machine is the only candidate.
	scarce int
}

// Item is one task instance awaiting placement.
type Item struct {
	// Task is the owning task.
	Task taskgraph.TaskID
	// Instance distinguishes multiple copies of the same task.
	Instance int
	// Candidates lists admissible machine names (already filtered by
	// requirements).
	Candidates []string
	// CandidateIDs optionally carries the same admissible machines as
	// MachineState.Index values, in the same order as Candidates. When
	// set (and the caller assigned unique Index values to its states),
	// policies resolve candidates by array index instead of hashing names
	// — the placement hot path of event-frequency callers like the
	// scenario engine. Candidates must still be populated; both views
	// must agree.
	CandidateIDs []int
	// Work is the instance's expected work, used by cost heuristics.
	Work float64
	// HomeSite is the item's data-affinity site plus one — the site its
	// dependency outputs live at, as a 1-based id into the site table a
	// topology-aware policy was configured with (Locality.SetTopology).
	// Zero means no data affinity; policies without topology ignore it.
	HomeSite int
}

// Assignment binds a task instance to a machine.
type Assignment struct {
	// Task and Instance identify the placed item.
	Task     taskgraph.TaskID
	Instance int
	// Machine is the chosen host.
	Machine string
}

// Policy places a batch of task instances onto machines.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Place returns assignments and the items it chose to leave waiting.
	// Implementations must not mutate items. The machines slice is the
	// policy's working state for the round — Slots (and load estimates)
	// are consumed in place as assignments are made, so callers that need
	// the snapshot afterwards must pass a copy. Batch callers rebuild the
	// snapshot per round anyway, and not copying keeps the per-event
	// placement path allocation-lean.
	Place(items []Item, machines []MachineState) ([]Assignment, []Item)
}

// placeScratch is a policy's reusable round storage: the id-resolution
// table, the ordering permutation, and the output buffers. Policies built
// with their New constructors carry one and place rounds allocation-free in
// steady state; zero-value policies (scratch == nil) allocate per round,
// which is fine for one-shot callers.
//
// The output Item buffer is double-buffered because of how batch callers
// loop: round N's waiting output is round N+1's items input, so the policy
// must never write an output over the slice it is still reading.
// Assignments have no such feedback (callers consume them before the next
// round), so one buffer suffices.
type placeScratch struct {
	byIndex []*MachineState
	order   []int
	placed  []Assignment
	items   [2][]Item
	flip    int
}

// outBuffers returns empty placed/waiting buffers for one round, reusing the
// scratch's storage when present. Neither can outgrow its initial capacity
// (placements are bounded by placeCap, waiting by the items offered), so the
// returned headers stay backed by the scratch.
func outBuffers(s *placeScratch, items []Item, machines []MachineState) ([]Assignment, []Item) {
	pc := placeCap(items, machines)
	if s == nil {
		return make([]Assignment, 0, pc), make([]Item, 0, len(items))
	}
	if cap(s.placed) < pc {
		s.placed = make([]Assignment, 0, pc)
	}
	s.flip ^= 1
	if cap(s.items[s.flip]) < len(items) {
		s.items[s.flip] = make([]Item, 0, len(items))
	}
	return s.placed[:0], s.items[s.flip][:0]
}

// orderBuf returns an empty ordering buffer of capacity >= n from the
// scratch, or a fresh one without it.
func orderBuf(s *placeScratch, n int) []int {
	if s == nil || cap(s.order) < n {
		o := make([]int, 0, n)
		if s != nil {
			s.order = o
		}
		return o
	}
	return s.order[:0]
}

// GreedyBestFit optimizes each job in isolation: every item takes the
// fastest, least-loaded admissible machine available. This is the baseline
// §4.3 argues against — it will burn the uniquely-capable "machine A" on a
// task that could run anywhere.
//
// The zero value is a valid policy that allocates its round state per Place
// call; NewGreedyBestFit returns one with reusable scratch for
// placement-per-event callers like the scenario engine.
type GreedyBestFit struct{ scratch *placeScratch }

// NewGreedyBestFit returns the policy with reusable round scratch: repeated
// Place calls share buffers instead of allocating. The returned value (and
// its copies) must then not place concurrently with itself.
func NewGreedyBestFit() GreedyBestFit { return GreedyBestFit{scratch: new(placeScratch)} }

// Name implements Policy.
func (GreedyBestFit) Name() string { return "greedy-best-fit" }

// Place implements Policy.
func (p GreedyBestFit) Place(items []Item, machines []MachineState) ([]Assignment, []Item) {
	round := newRound(machines, p.scratch)
	var cache candidateCache
	placed, waiting := outBuffers(p.scratch, items, machines)
	for _, it := range items {
		best := pickBest(it, &round, &cache, false)
		if best == nil {
			waiting = append(waiting, it)
			continue
		}
		best.Slots--
		best.Load += loadIncrement(it, best.Machine)
		placed = append(placed, Assignment{Task: it.Task, Instance: it.Instance, Machine: best.Machine.Name})
	}
	return placed, waiting
}

// UtilizationFirst is the paper's policy: "tend to give preference to
// schedules that maximize overall resource utilization (and therefore
// maximize system throughput) rather than schedules that optimize the
// performance of any single job."
//
// Constrained items (fewest candidate machines) place first; flexible items
// then avoid machines that are the unique hosts of still-waiting constrained
// items, waiting instead if no other machine is free — the §4.3 example where
// the portable task yields machine A and "should be made to wait" because it
// "can be used to occupy a workstation if one becomes idle."
//
// Like GreedyBestFit, the zero value allocates per round and
// NewUtilizationFirst returns the scratch-carrying variant.
type UtilizationFirst struct{ scratch *placeScratch }

// NewUtilizationFirst returns the policy with reusable round scratch; see
// NewGreedyBestFit.
func NewUtilizationFirst() UtilizationFirst {
	return UtilizationFirst{scratch: new(placeScratch)}
}

// Name implements Policy.
func (UtilizationFirst) Name() string { return "utilization-first" }

// Place implements Policy.
func (p UtilizationFirst) Place(items []Item, machines []MachineState) ([]Assignment, []Item) {
	round := newRound(machines, p.scratch)
	var cache candidateCache
	// A machine's scarce count tracks waiting constrained items for which
	// it is the only candidate. Names absent from the snapshot are skipped
	// as candidates anyway, so their demand can be dropped here. The same
	// pass collects the distinct candidate-set sizes (almost always ≤ 2:
	// one pinned class plus "any machine").
	lenA, lenB := -1, -1 // distinct candidate-set sizes seen (at most two tracked)
	moreSizes := false
	for _, it := range items {
		if len(it.Candidates) == 1 {
			var ms *MachineState
			if it.CandidateIDs != nil {
				ms = round.byID(it.CandidateIDs[0])
			} else {
				ms = round.lookup(it.Candidates[0])
			}
			if ms != nil {
				ms.scarce++
			}
		}
		switch n := len(it.Candidates); {
		case lenA == -1 || n == lenA:
			lenA = n
		case lenB == -1 || n == lenB:
			lenB = n
		default:
			moreSizes = true
		}
	}
	// Scarcest-capability first; ties keep submission order. With one
	// distinct size the stable sort is the identity permutation; with two,
	// a stable partition replaces the O(n log n) sort. More sizes fall back
	// to sorting.
	var order []int
	switch {
	case !moreSizes && lenB == -1:
		// uniform: identity order
	case !moreSizes:
		small := lenA
		if lenB < lenA {
			small = lenB
		}
		order = orderBuf(p.scratch, len(items))
		for i := range items {
			if len(items[i].Candidates) == small {
				order = append(order, i)
			}
		}
		for i := range items {
			if len(items[i].Candidates) != small {
				order = append(order, i)
			}
		}
	default:
		order = orderBuf(p.scratch, len(items))[:len(items)]
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return len(items[order[a]].Candidates) < len(items[order[b]].Candidates)
		})
	}

	placed, waiting := outBuffers(p.scratch, items, machines)
	for pos := range items {
		idx := pos
		if order != nil {
			idx = order[pos]
		}
		it := items[idx]
		constrained := len(it.Candidates) == 1
		// Flexible items skip machines reserved for tasks that can run
		// nowhere else.
		best := pickBest(it, &round, &cache, !constrained)
		if best == nil {
			waiting = append(waiting, it)
			continue
		}
		if constrained {
			best.scarce--
		}
		best.Slots--
		best.Load += loadIncrement(it, best.Machine)
		placed = append(placed, Assignment{Task: it.Task, Instance: it.Instance, Machine: best.Machine.Name})
	}
	return placed, waiting
}

// roundState wraps the caller's machine states as the round's working set
// (the Policy contract hands the slice to the policy; no defensive copy).
// Name lookup is served by a map built lazily on first use: batch callers
// that pass CandidateIDs or positionally aligned candidate sets never pay
// for building it.
type roundState struct {
	backing []MachineState
	byName  map[string]*MachineState
	byIndex []*MachineState
	scratch *placeScratch
}

func newRound(machines []MachineState, s *placeScratch) roundState {
	return roundState{backing: machines, scratch: s}
}

// positional reports whether cands names the snapshot's machines in order.
// Callers like the scenario engine build candidate lists straight from the
// machine fleet, so the name strings share headers with the snapshot's and
// the comparison is effectively pointer equality per entry.
func (r *roundState) positional(cands []string) bool {
	if len(cands) != len(r.backing) {
		return false
	}
	for i := range cands {
		if cands[i] != r.backing[i].Machine.Name {
			return false
		}
	}
	return true
}

func (r *roundState) lookup(name string) *MachineState {
	if r.byName == nil {
		r.byName = make(map[string]*MachineState, len(r.backing))
		for i := range r.backing {
			r.byName[r.backing[i].Machine.Name] = &r.backing[i]
		}
	}
	return r.byName[name]
}

// byID resolves a caller-assigned MachineState.Index to its snapshot entry,
// nil when the id names no machine in this round. The index table is one
// array fill — no hashing.
func (r *roundState) byID(id int) *MachineState {
	if r.byIndex == nil {
		max := -1
		for i := range r.backing {
			if r.backing[i].Index > max {
				max = r.backing[i].Index
			}
		}
		if s := r.scratch; s != nil && cap(s.byIndex) >= max+1 {
			r.byIndex = s.byIndex[:max+1]
			for i := range r.byIndex {
				r.byIndex[i] = nil
			}
		} else {
			r.byIndex = make([]*MachineState, max+1)
			if s != nil {
				s.byIndex = r.byIndex
			}
		}
		for i := range r.backing {
			r.byIndex[r.backing[i].Index] = &r.backing[i]
		}
	}
	if id < 0 || id >= len(r.byIndex) {
		return nil
	}
	return r.byIndex[id]
}

// pickBest scans one item's candidates — by dense id when CandidateIDs is
// set, by (cached) name resolution otherwise — and returns the
// best-scoring machine with a free slot, nil when none qualifies. Equal
// scores keep the earliest candidate, so candidate order is the
// tie-breaker. With skipReserved, machines carrying scarce reservations
// are passed over (UtilizationFirst's flexible items).
func pickBest(it Item, round *roundState, cache *candidateCache, skipReserved bool) *MachineState {
	var best *MachineState
	bestScore := -1.0
	consider := func(ms *MachineState) {
		if ms == nil || ms.Slots <= 0 {
			return
		}
		if skipReserved && ms.scarce > 0 {
			return
		}
		score := ms.Machine.Speed / (1 + ms.Load)
		if score > bestScore {
			bestScore = score
			best = ms
		}
	}
	if ids := it.CandidateIDs; ids != nil {
		for _, id := range ids {
			consider(round.byID(id))
		}
	} else {
		for _, ms := range cache.resolve(it.Candidates, round) {
			consider(ms)
		}
	}
	return best
}

// placeCap bounds how many assignments a round can produce: no more than
// the items offered or the slots available.
func placeCap(items []Item, machines []MachineState) int {
	slots := 0
	for i := range machines {
		slots += machines[i].Slots
	}
	if slots > len(items) {
		slots = len(items)
	}
	if slots < 0 {
		slots = 0
	}
	return slots
}

// candidateCache memoizes the name→state resolution of recently seen
// Candidates slices, keyed by slice identity. Batch callers (the scenario
// engine, the experiment harnesses) reuse one slice header per candidate
// class — typically "all machines" and one pinned subset, which may
// interleave item-by-item — so two entries make resolution, the only string
// hashing on the placement path, a once-per-class cost instead of
// once-per-item×candidate. Unknown names resolve to nil and are skipped at
// scoring time, exactly like the map-miss path they replace.
type candidateCache struct {
	entries [2]struct {
		names []string
		ms    []*MachineState
	}
}

func (c *candidateCache) resolve(cands []string, r *roundState) []*MachineState {
	if len(cands) == 0 {
		return nil
	}
	for i := range c.entries {
		e := &c.entries[i]
		if len(e.names) == len(cands) && &e.names[0] == &cands[0] {
			return e.ms
		}
	}
	ms := make([]*MachineState, len(cands))
	if r.positional(cands) {
		for i := range ms {
			ms[i] = &r.backing[i]
		}
	} else {
		for i, n := range cands {
			ms[i] = r.lookup(n)
		}
	}
	c.entries[1] = c.entries[0]
	c.entries[0].names, c.entries[0].ms = cands, ms
	return ms
}

// loadIncrement estimates how much an item raises a machine's load, scaling
// inversely with speed so fast machines absorb work more gracefully.
func loadIncrement(it Item, m arch.Machine) float64 {
	if m.Speed <= 0 {
		return 1
	}
	if it.Work <= 0 {
		return 1 / m.Speed
	}
	return it.Work / (it.Work + m.Speed) / m.Speed * 2
}

// AgingQueue is the §4.3 anti-starvation dispatcher queue: effective
// priority = base priority + aging rate × wait time, so every task is
// eventually dispatched.
type AgingQueue struct {
	// rate is priority points added per second of waiting.
	rate    float64
	entries []agingEntry
}

type agingEntry struct {
	id       string
	base     float64
	enqueued time.Duration
}

// NewAgingQueue returns a queue with the given aging rate (points/second).
// A zero rate disables aging (pure static priority — the starvation-prone
// baseline the experiments compare against).
func NewAgingQueue(rate float64) *AgingQueue {
	return &AgingQueue{rate: rate}
}

// Push enqueues a task with a base priority at virtual time now.
func (q *AgingQueue) Push(id string, base float64, now time.Duration) {
	q.entries = append(q.entries, agingEntry{id: id, base: base, enqueued: now})
}

// Len returns the queued count.
func (q *AgingQueue) Len() int { return len(q.entries) }

// Effective returns the entry's current effective priority.
func (q *AgingQueue) effective(e agingEntry, now time.Duration) float64 {
	return e.base + q.rate*(now-e.enqueued).Seconds()
}

// Peek returns the id that Pop would return, without removing it.
func (q *AgingQueue) Peek(now time.Duration) (string, bool) {
	idx := q.best(now)
	if idx < 0 {
		return "", false
	}
	return q.entries[idx].id, true
}

// Pop removes and returns the highest effective-priority task. FIFO order
// breaks ties, which itself prevents starvation among equal priorities.
func (q *AgingQueue) Pop(now time.Duration) (string, bool) {
	idx := q.best(now)
	if idx < 0 {
		return "", false
	}
	id := q.entries[idx].id
	q.entries = append(q.entries[:idx], q.entries[idx+1:]...)
	return id, true
}

func (q *AgingQueue) best(now time.Duration) int {
	idx := -1
	bestP := 0.0
	for i, e := range q.entries {
		p := q.effective(e, now)
		if idx < 0 || p > bestP {
			idx = i
			bestP = p
		}
	}
	return idx
}

// Boost raises a queued task's base priority — the §4.3 "authorized users
// will be able to modify the priorities of particular applications" hook.
// It reports whether the task was found.
func (q *AgingQueue) Boost(id string, delta float64) bool {
	for i := range q.entries {
		if q.entries[i].id == id {
			q.entries[i].base += delta
			return true
		}
	}
	return false
}

// WaitTimes reports each queued task's wait so far, for starvation metrics.
func (q *AgingQueue) WaitTimes(now time.Duration) map[string]time.Duration {
	out := make(map[string]time.Duration, len(q.entries))
	for _, e := range q.entries {
		out[e.id] = now - e.enqueued
	}
	return out
}
