package sched

import (
	"testing"

	"vce/internal/taskgraph"
)

// siteMachine builds a MachineState with a dense Index (the locality site
// map is Index-keyed).
func siteMachine(name string, idx int, speed float64, slots int) MachineState {
	m := ws(name, speed, 0, slots)
	m.Index = idx
	return m
}

// twoSiteWorld is machines a0,a1 at site 0 and b0,b1 at site 1, with b0
// faster than anything at site 0 so greedy placement would prefer it.
func twoSiteWorld() ([]MachineState, []int, [][]float64) {
	machines := []MachineState{
		siteMachine("a0", 0, 1, 1),
		siteMachine("a1", 1, 1, 1),
		siteMachine("b0", 2, 4, 1),
		siteMachine("b1", 3, 1, 1),
	}
	siteOf := []int{0, 0, 1, 1}
	cost := [][]float64{{0, 10}, {10, 0}}
	return machines, siteOf, cost
}

func names(machines []MachineState) ([]string, []int) {
	var n []string
	var ids []int
	for _, m := range machines {
		n = append(n, m.Machine.Name)
		ids = append(ids, m.Index)
	}
	return n, ids
}

func item(id string, home int, cands []string, ids []int) Item {
	return Item{Task: taskgraph.TaskID(id), Candidates: cands, CandidateIDs: ids, Work: 10, HomeSite: home}
}

func TestLocalityPrefersHomeSite(t *testing.T) {
	machines, siteOf, cost := twoSiteWorld()
	cands, ids := names(machines)
	l := NewLocality()
	l.SetTopology(siteOf, cost)
	placed, waiting := l.Place([]Item{item("t0", 1, cands, ids)}, machines)
	if len(waiting) != 0 || len(placed) != 1 {
		t.Fatalf("placed %d waiting %d, want 1/0", len(placed), len(waiting))
	}
	// Site 0 machines are slower than b0, but the data lives at site 0.
	if got := placed[0].Machine; got != "a0" && got != "a1" {
		t.Fatalf("placed on %s, want a home-site machine", got)
	}
}

func TestLocalityWaitsThenForwards(t *testing.T) {
	machines, siteOf, cost := twoSiteWorld()
	cands, ids := names(machines)
	l := NewLocality()
	l.Threshold = 2
	l.SetTopology(siteOf, cost)
	// Five site-0 items against two site-0 slots: two place locally, two
	// wait under the threshold, the fifth forwards to site 1.
	var items []Item
	for _, id := range []string{"t0", "t1", "t2", "t3", "t4"} {
		items = append(items, item(id, 1, cands, ids))
	}
	placed, waiting := l.Place(items, machines)
	if len(placed) != 3 || len(waiting) != 2 {
		t.Fatalf("placed %d waiting %d, want 3/2", len(placed), len(waiting))
	}
	forwarded := placed[2]
	if forwarded.Machine != "b0" && forwarded.Machine != "b1" {
		t.Fatalf("overflow item went to %s, want a site-1 machine", forwarded.Machine)
	}
	if forwarded.Machine != "b0" {
		t.Fatalf("forwarded to %s, want the best-scoring machine of the cheapest site (b0)", forwarded.Machine)
	}
}

func TestLocalityRejectsPastCap(t *testing.T) {
	machines, siteOf, cost := twoSiteWorld()
	for i := range machines {
		machines[i].Slots = 0 // nothing free anywhere
	}
	cands, ids := names(machines)
	l := NewLocality()
	l.Threshold = 1
	l.RejectCap = 3
	l.SetTopology(siteOf, cost)
	var items []Item
	for _, id := range []string{"t0", "t1", "t2", "t3", "t4"} {
		items = append(items, item(id, 1, cands, ids))
	}
	placed, waiting := l.Place(items, machines)
	if len(placed) != 0 {
		t.Fatalf("placed %d with zero slots", len(placed))
	}
	// Backlog 1..3 wait (cap 3), 4 and 5 drop.
	if len(waiting) != 3 {
		t.Fatalf("waiting %d, want 3", len(waiting))
	}
	dropped := l.Dropped()
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(dropped))
	}
	if string(dropped[0].Task) != "t3" || string(dropped[1].Task) != "t4" {
		t.Fatalf("dropped %v, want the last two offered", dropped)
	}
	// Conservation: every offered item is placed, waiting, or dropped.
	if len(placed)+len(waiting)+len(dropped) != len(items) {
		t.Fatalf("items leaked: %d+%d+%d != %d", len(placed), len(waiting), len(dropped), len(items))
	}
}

func TestLocalityWithoutTopologyIsGreedy(t *testing.T) {
	machines, _, _ := twoSiteWorld()
	cands, ids := names(machines)
	l := NewLocality()
	placed, _ := l.Place([]Item{item("t0", 1, cands, ids)}, machines)
	if len(placed) != 1 || placed[0].Machine != "b0" {
		t.Fatalf("placed = %v, want greedy best fit on b0", placed)
	}
}

func TestLocalityNoAffinityIsGreedy(t *testing.T) {
	machines, siteOf, cost := twoSiteWorld()
	cands, ids := names(machines)
	l := NewLocality()
	l.SetTopology(siteOf, cost)
	placed, _ := l.Place([]Item{item("t0", 0, cands, ids)}, machines)
	if len(placed) != 1 || placed[0].Machine != "b0" {
		t.Fatalf("placed = %v, want greedy best fit on b0", placed)
	}
}
