package sched

import "math"

// Locality is the topology-aware placement policy: the load-balancing triad
// of the distributed-FaaS literature (place local, forward to a nearby node
// under pressure, reject past a cap) applied to VCE placement. Items carry a
// HomeSite — the network position of their dependency data — and the policy
// prefers machines that minimize the data-transfer time from that site:
//
//   - An item with a free machine at its home site places there (best
//     speed/load score within the site).
//   - With the home site full, the item waits for a local slot while the
//     site's backlog is at most Threshold items — betting a short wait beats
//     moving the data.
//   - Past Threshold the item forwards: it takes the free candidate machine
//     whose site has the cheapest transfer cost from home (score breaks
//     ties), accepting the data movement to shed the hot spot.
//   - With no free machine anywhere and the site's backlog past RejectCap,
//     the item is dropped — removed from both outputs and reported through
//     Dropped, the backpressure signal open workloads need.
//
// Items without a home site (HomeSite == 0), and every item when no topology
// was configured, place greedily like GreedyBestFit — so the policy is
// comparable to the reactive baselines on topology-free scenarios.
type Locality struct {
	// Threshold is the per-site backlog tolerated before items forward
	// away from their home site (0 means the default of 2).
	Threshold int
	// RejectCap is the per-site backlog beyond which an unplaceable item
	// is dropped instead of queued (0 means the default of 128).
	RejectCap int

	scratch *placeScratch
	siteOf  []int
	cost    [][]float64
	backlog []int
	dropped []Item
}

// Default pressure bounds: forward after a couple of waiters, reject only
// under pathological backlog.
const (
	defaultLocalityThreshold = 2
	defaultLocalityRejectCap = 128
)

// NewLocality returns the policy with reusable round scratch; see
// NewGreedyBestFit. Configure the site map with SetTopology.
func NewLocality() *Locality { return &Locality{scratch: new(placeScratch)} }

// Name implements Policy.
func (*Locality) Name() string { return "locality" }

// SetTopology installs the site model: siteOf maps MachineState.Index to a
// site id, and cost[a][b] estimates the seconds needed to move one item's
// dependency payload from site a to site b. Both slices are read, never
// written, and must outlive subsequent Place calls. A nil siteOf reverts to
// greedy placement.
func (l *Locality) SetTopology(siteOf []int, cost [][]float64) {
	l.siteOf = siteOf
	l.cost = cost
}

// Dropped returns the items the last Place call rejected under backlog
// pressure, in submission order. The slice is valid until the next Place.
func (l *Locality) Dropped() []Item { return l.dropped }

// localityScan accumulates one item's candidate scan without per-item
// closures: the best free machine at the home site, and the best forwarding
// target (cheapest transfer cost from home, then score; first seen wins
// ties, so candidate order is the final tie-breaker).
type localityScan struct {
	siteOf    []int
	cost      []float64 // home site's cost row (nil: unknown costs)
	home      int
	local     *MachineState
	localBest float64
	fwd       *MachineState
	fwdCost   float64
	fwdBest   float64
}

func (s *localityScan) begin(home int, cost []float64) {
	s.home, s.cost = home, cost
	s.local, s.localBest = nil, -1
	s.fwd, s.fwdCost, s.fwdBest = nil, math.MaxFloat64, -1
}

// site resolves a machine's site id, -1 when the index is outside the map.
func (s *localityScan) site(ms *MachineState) int {
	if ms.Index < 0 || ms.Index >= len(s.siteOf) {
		return -1
	}
	return s.siteOf[ms.Index]
}

func (s *localityScan) consider(ms *MachineState) {
	if ms == nil || ms.Slots <= 0 {
		return
	}
	score := ms.Machine.Speed / (1 + ms.Load)
	site := s.site(ms)
	if site == s.home {
		if score > s.localBest {
			s.localBest, s.local = score, ms
		}
		return
	}
	c := math.MaxFloat64 // unknown site: a last-resort forwarding target
	if s.cost != nil && site >= 0 && site < len(s.cost) {
		c = s.cost[site]
	}
	if c < s.fwdCost || (c == s.fwdCost && score > s.fwdBest) {
		s.fwdCost, s.fwdBest, s.fwd = c, score, ms
	}
}

// Place implements Policy.
func (l *Locality) Place(items []Item, machines []MachineState) ([]Assignment, []Item) {
	round := newRound(machines, l.scratch)
	var cache candidateCache
	placed, waiting := outBuffers(l.scratch, items, machines)
	l.dropped = l.dropped[:0]

	threshold := l.Threshold
	if threshold == 0 {
		threshold = defaultLocalityThreshold
	}
	rejectCap := l.RejectCap
	if rejectCap == 0 {
		rejectCap = defaultLocalityRejectCap
	}
	nsites := len(l.cost)
	if cap(l.backlog) < nsites {
		l.backlog = make([]int, nsites)
	}
	l.backlog = l.backlog[:nsites]
	for i := range l.backlog {
		l.backlog[i] = 0
	}

	sc := localityScan{siteOf: l.siteOf}
	for _, it := range items {
		home := it.HomeSite - 1
		if l.siteOf == nil || home < 0 || home >= nsites {
			// No topology or no affinity: greedy best fit.
			best := pickBest(it, &round, &cache, false)
			if best == nil {
				waiting = append(waiting, it)
				continue
			}
			best.Slots--
			best.Load += loadIncrement(it, best.Machine)
			placed = append(placed, Assignment{Task: it.Task, Instance: it.Instance, Machine: best.Machine.Name})
			continue
		}
		var row []float64
		if home < len(l.cost) {
			row = l.cost[home]
		}
		sc.begin(home, row)
		if ids := it.CandidateIDs; ids != nil {
			for _, id := range ids {
				sc.consider(round.byID(id))
			}
		} else {
			for _, ms := range cache.resolve(it.Candidates, &round) {
				sc.consider(ms)
			}
		}
		best := sc.local
		if best == nil {
			// Home site full: wait a little, forward under pressure.
			l.backlog[home]++
			if l.backlog[home] <= threshold {
				waiting = append(waiting, it)
				continue
			}
			best = sc.fwd
			if best == nil {
				if l.backlog[home] > rejectCap {
					l.dropped = append(l.dropped, it)
				} else {
					waiting = append(waiting, it)
				}
				continue
			}
		}
		best.Slots--
		best.Load += loadIncrement(it, best.Machine)
		placed = append(placed, Assignment{Task: it.Task, Instance: it.Instance, Machine: best.Machine.Name})
	}
	return placed, waiting
}
