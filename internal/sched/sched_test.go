package sched

import (
	"testing"
	"testing/quick"
	"time"

	"vce/internal/arch"
	"vce/internal/taskgraph"
)

func ws(name string, speed float64, load float64, slots int) MachineState {
	return MachineState{
		Machine: arch.Machine{Name: name, Class: arch.Workstation, Speed: speed, OS: "unix"},
		Load:    load,
		Slots:   slots,
	}
}

func TestRankBidsByLoad(t *testing.T) {
	bids := []Bid{
		{Machine: "c", Load: 0.9, Capacity: 1},
		{Machine: "a", Load: 0.1, Capacity: 1},
		{Machine: "b", Load: 0.5, Capacity: 1},
	}
	ranked := RankBids(bids)
	if ranked[0].Machine != "a" || ranked[1].Machine != "b" || ranked[2].Machine != "c" {
		t.Fatalf("ranked = %v", ranked)
	}
	// Input left untouched.
	if bids[0].Machine != "c" {
		t.Fatal("RankBids mutated input")
	}
}

func TestRankBidsTieBreak(t *testing.T) {
	ranked := RankBids([]Bid{{Machine: "z", Load: 0.5}, {Machine: "a", Load: 0.5}})
	if ranked[0].Machine != "a" {
		t.Fatalf("tie-break = %v", ranked)
	}
}

func TestSelectBestLeastLoaded(t *testing.T) {
	bids := []Bid{
		{Machine: "busy", Load: 2.0, Capacity: 4},
		{Machine: "idle", Load: 0.0, Capacity: 1},
		{Machine: "mid", Load: 0.7, Capacity: 1},
	}
	machines, ok := SelectBest(bids, 2)
	if !ok {
		t.Fatal("selection failed")
	}
	if machines[0] != "idle" || machines[1] != "mid" {
		t.Fatalf("selected %v, want least-loaded first", machines)
	}
}

func TestSelectBestRespectsCapacity(t *testing.T) {
	bids := []Bid{{Machine: "a", Load: 0, Capacity: 3}}
	machines, ok := SelectBest(bids, 3)
	if !ok || len(machines) != 3 {
		t.Fatalf("capacity reuse failed: %v %v", machines, ok)
	}
	if _, ok := SelectBest(bids, 4); ok {
		t.Fatal("selection exceeded capacity")
	}
}

func TestSelectBestInsufficientIsAllocError(t *testing.T) {
	machines, ok := SelectBest([]Bid{{Machine: "a", Load: 0, Capacity: 1}}, 2)
	if ok {
		t.Fatal("insufficient resources reported success")
	}
	if len(machines) != 1 {
		t.Fatalf("partial result = %v", machines)
	}
}

// machineAScenario reproduces §4.3's example: task "pinned" runs only on
// machine A; task "portable" runs anywhere but fastest on machine A.
func machineAScenario() ([]Item, []MachineState) {
	items := []Item{
		{Task: "portable", Candidates: []string{"A", "B"}, Work: 10},
		{Task: "pinned", Candidates: []string{"A"}, Work: 10},
	}
	machines := []MachineState{
		ws("A", 4, 0, 1), // fast, uniquely capable
		ws("B", 1, 0, 1), // slow but universal
	}
	return items, machines
}

func TestUtilizationFirstSolvesMachineA(t *testing.T) {
	items, machines := machineAScenario()
	placed, waiting := UtilizationFirst{}.Place(items, machines)
	got := map[taskgraph.TaskID]string{}
	for _, a := range placed {
		got[a.Task] = a.Machine
	}
	if got["pinned"] != "A" {
		t.Fatalf("pinned placed on %q, want A", got["pinned"])
	}
	if got["portable"] != "B" {
		t.Fatalf("portable placed on %q, want B (yield A to the pinned task)", got["portable"])
	}
	if len(waiting) != 0 {
		t.Fatalf("waiting = %v", waiting)
	}
}

func TestGreedyBestFitBurnsMachineA(t *testing.T) {
	// The baseline takes A for the portable task (it is fastest there),
	// leaving the pinned task stranded — exactly the failure §4.3
	// describes.
	items, machines := machineAScenario()
	placed, waiting := GreedyBestFit{}.Place(items, machines)
	got := map[taskgraph.TaskID]string{}
	for _, a := range placed {
		got[a.Task] = a.Machine
	}
	if got["portable"] != "A" {
		t.Fatalf("greedy portable on %q, expected it to grab A", got["portable"])
	}
	if len(waiting) != 1 || waiting[0].Task != "pinned" {
		t.Fatalf("waiting = %v, want the pinned task stranded", waiting)
	}
}

func TestUtilizationFirstFlexibleWaitsWhenOnlyScarceMachineFree(t *testing.T) {
	// One machine, demanded by a constrained task; the flexible task must
	// wait even though the machine could host it ("the second job should
	// be made to wait", §4.3).
	items := []Item{
		{Task: "flexible", Candidates: []string{"A"}, Work: 1},
		{Task: "pinned", Candidates: []string{"A"}, Work: 1},
	}
	// Both claim only A here; make flexible truly flexible:
	items[0].Candidates = []string{"A", "Bgone"} // B not in machine set
	machines := []MachineState{ws("A", 1, 0, 1)}
	placed, waiting := UtilizationFirst{}.Place(items, machines)
	if len(placed) != 1 || placed[0].Task != "pinned" {
		t.Fatalf("placed = %v, want only pinned", placed)
	}
	if len(waiting) != 1 || waiting[0].Task != "flexible" {
		t.Fatalf("waiting = %v", waiting)
	}
}

func TestUtilizationFirstUsesScarceMachineWhenNoScarceDemand(t *testing.T) {
	items := []Item{{Task: "flexible", Candidates: []string{"A", "B"}, Work: 1}}
	machines := []MachineState{ws("A", 4, 0, 1), ws("B", 1, 0, 1)}
	placed, waiting := UtilizationFirst{}.Place(items, machines)
	if len(waiting) != 0 || len(placed) != 1 {
		t.Fatalf("placed=%v waiting=%v", placed, waiting)
	}
	if placed[0].Machine != "A" {
		t.Fatalf("flexible should take the fast machine when nobody scarce needs it, got %q", placed[0].Machine)
	}
}

func TestPlaceRespectsSlots(t *testing.T) {
	items := []Item{
		{Task: "t1", Candidates: []string{"A"}},
		{Task: "t2", Candidates: []string{"A"}},
	}
	for _, pol := range []Policy{GreedyBestFit{}, UtilizationFirst{}} {
		// Fresh snapshot per policy: Place consumes the slice it is given.
		machines := []MachineState{ws("A", 1, 0, 1)}
		placed, waiting := pol.Place(items, machines)
		if len(placed) != 1 || len(waiting) != 1 {
			t.Fatalf("%s: placed=%d waiting=%d, want 1/1", pol.Name(), len(placed), len(waiting))
		}
	}
}

// TestPlaceConsumesMachineSlots pins the Policy contract: the machines
// slice is the round's working state, so assignments consume the caller's
// Slots in place (callers needing the snapshot afterwards pass a copy).
// Items, by contrast, must never be mutated.
func TestPlaceConsumesMachineSlots(t *testing.T) {
	items := []Item{{Task: "t", Candidates: []string{"A"}}}
	machines := []MachineState{ws("A", 1, 0, 1)}
	placed, _ := UtilizationFirst{}.Place(items, machines)
	if len(placed) != 1 {
		t.Fatalf("placed = %d, want 1", len(placed))
	}
	if machines[0].Slots != 0 {
		t.Fatalf("caller Slots = %d after placement, want 0 (consumed in place)", machines[0].Slots)
	}
	if items[0].Task != "t" || len(items[0].Candidates) != 1 {
		t.Fatal("policy mutated caller's items")
	}
}

func TestPlaceUnknownCandidateSkipped(t *testing.T) {
	items := []Item{{Task: "t", Candidates: []string{"ghost"}}}
	machines := []MachineState{ws("A", 1, 0, 1)}
	placed, waiting := GreedyBestFit{}.Place(items, machines)
	if len(placed) != 0 || len(waiting) != 1 {
		t.Fatal("item with unknown candidates should wait")
	}
}

func TestMultiInstancePlacementSpreads(t *testing.T) {
	items := []Item{
		{Task: "mc", Instance: 0, Candidates: []string{"A", "B", "C"}},
		{Task: "mc", Instance: 1, Candidates: []string{"A", "B", "C"}},
		{Task: "mc", Instance: 2, Candidates: []string{"A", "B", "C"}},
	}
	machines := []MachineState{ws("A", 1, 0, 1), ws("B", 1, 0, 1), ws("C", 1, 0, 1)}
	placed, waiting := UtilizationFirst{}.Place(items, machines)
	if len(placed) != 3 || len(waiting) != 0 {
		t.Fatalf("placed=%d waiting=%d", len(placed), len(waiting))
	}
	used := map[string]bool{}
	for _, a := range placed {
		used[a.Machine] = true
	}
	if len(used) != 3 {
		t.Fatalf("instances piled up: %v", placed)
	}
}

func TestAgingQueueFIFOAmongEqual(t *testing.T) {
	q := NewAgingQueue(1)
	q.Push("first", 0, 0)
	q.Push("second", 0, 0)
	id, ok := q.Pop(time.Second)
	if !ok || id != "first" {
		t.Fatalf("pop = %q", id)
	}
}

func TestAgingQueuePriorityWins(t *testing.T) {
	q := NewAgingQueue(0)
	q.Push("low", 1, 0)
	q.Push("high", 10, 0)
	id, _ := q.Pop(0)
	if id != "high" {
		t.Fatalf("pop = %q", id)
	}
}

func TestAgingOvertakesStaticPriority(t *testing.T) {
	q := NewAgingQueue(1) // 1 point per second
	q.Push("old-low", 0, 0)
	q.Push("new-high", 5, 0)
	// At t=0 the high-priority task wins; but if we only query later,
	// both aged equally, so high still wins.
	if id, _ := q.Peek(0); id != "new-high" {
		t.Fatalf("peek = %q", id)
	}
	// Re-push high repeatedly (fresh arrivals), old-low must still win
	// eventually because its age keeps growing.
	q2 := NewAgingQueue(1)
	q2.Push("starving", 0, 0)
	winner := ""
	for s := 1; s <= 20; s++ {
		now := time.Duration(s) * time.Second
		q2.Push("fresh", 5, now)
		id, _ := q2.Pop(now)
		if id == "starving" {
			winner = id
			break
		}
	}
	if winner != "starving" {
		t.Fatal("aged task never dispatched: starvation")
	}
}

func TestNoAgingStarves(t *testing.T) {
	q := NewAgingQueue(0) // aging disabled
	q.Push("starving", 0, 0)
	for s := 1; s <= 50; s++ {
		now := time.Duration(s) * time.Second
		q.Push("fresh", 5, now)
		id, _ := q.Pop(now)
		if id == "starving" {
			t.Fatal("static priority unexpectedly dispatched the low task")
		}
	}
	if q.Len() != 1 {
		t.Fatalf("queue len = %d, want 1 (the starving task)", q.Len())
	}
}

func TestBoost(t *testing.T) {
	q := NewAgingQueue(0)
	q.Push("app", 0, 0)
	q.Push("other", 5, 0)
	if !q.Boost("app", 100) {
		t.Fatal("boost failed to find task")
	}
	if q.Boost("ghost", 1) {
		t.Fatal("boost found a ghost")
	}
	id, _ := q.Pop(0)
	if id != "app" {
		t.Fatalf("boosted task not dispatched first: %q", id)
	}
}

func TestWaitTimes(t *testing.T) {
	q := NewAgingQueue(1)
	q.Push("a", 0, 0)
	q.Push("b", 0, 5*time.Second)
	waits := q.WaitTimes(10 * time.Second)
	if waits["a"] != 10*time.Second || waits["b"] != 5*time.Second {
		t.Fatalf("waits = %v", waits)
	}
}

func TestPopEmpty(t *testing.T) {
	q := NewAgingQueue(1)
	if _, ok := q.Pop(0); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	if _, ok := q.Peek(0); ok {
		t.Fatal("peek on empty queue succeeded")
	}
}

func TestPropertySelectBestNeverExceedsCapacity(t *testing.T) {
	f := func(caps []uint8, n uint8) bool {
		var bids []Bid
		total := 0
		for i, c := range caps {
			if i >= 10 {
				break
			}
			cap := int(c % 5)
			total += cap
			bids = append(bids, Bid{Machine: string(rune('a' + i)), Load: float64(i), Capacity: cap})
		}
		want := int(n%16) + 1
		machines, ok := SelectBest(bids, want)
		if ok && len(machines) != want {
			return false
		}
		if !ok && len(machines) >= want {
			return false
		}
		counts := map[string]int{}
		for _, m := range machines {
			counts[m]++
		}
		for _, b := range bids {
			if counts[b.Machine] > b.Capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
