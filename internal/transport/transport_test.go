package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"vce/internal/netsim"
)

// collector gathers delivered messages behind a mutex.
type collector struct {
	mu   sync.Mutex
	msgs []Message
	ch   chan Message
}

func newCollector() *collector {
	return &collector{ch: make(chan Message, 1024)}
}

func (c *collector) handler(m Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
	c.ch <- m
}

func (c *collector) wait(t *testing.T, n int) []Message {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]Message(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-deadline:
			c.mu.Lock()
			got := len(c.msgs)
			c.mu.Unlock()
			t.Fatalf("timed out waiting for %d messages, have %d", n, got)
		case <-time.After(time.Millisecond):
		}
	}
}

func testNetworkBasics(t *testing.T, mk func(t *testing.T) Network) {
	t.Run("roundtrip", func(t *testing.T) {
		net := mk(t)
		a, err := net.Endpoint("a")
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := net.Endpoint("b")
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		col := newCollector()
		b.Handle(col.handler)
		a.Handle(func(Message) {})
		if err := a.Send(b.Addr(), "ping", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		msgs := col.wait(t, 1)
		if msgs[0].Kind != "ping" || string(msgs[0].Payload) != "hello" {
			t.Fatalf("got %+v", msgs[0])
		}
		if msgs[0].From != a.Addr() {
			t.Fatalf("from = %v, want %v", msgs[0].From, a.Addr())
		}
	})

	t.Run("fifo per pair", func(t *testing.T) {
		net := mk(t)
		a, _ := net.Endpoint("fifoa")
		defer a.Close()
		b, _ := net.Endpoint("fifob")
		defer b.Close()
		col := newCollector()
		b.Handle(col.handler)
		const n = 200
		for i := 0; i < n; i++ {
			if err := a.Send(b.Addr(), "seq", []byte(fmt.Sprintf("%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		msgs := col.wait(t, n)
		for i := 0; i < n; i++ {
			if string(msgs[i].Payload) != fmt.Sprintf("%d", i) {
				t.Fatalf("message %d out of order: %s", i, msgs[i].Payload)
			}
		}
	})

	t.Run("send after close fails", func(t *testing.T) {
		net := mk(t)
		a, _ := net.Endpoint("closea")
		b, _ := net.Endpoint("closeb")
		b.Handle(func(Message) {})
		a.Handle(func(Message) {})
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(b.Addr(), "x", nil); err == nil {
			t.Fatal("send from closed endpoint succeeded")
		}
		b.Close()
	})

	t.Run("double close is nil", func(t *testing.T) {
		net := mk(t)
		a, _ := net.Endpoint("dceA")
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	})

	t.Run("empty payload", func(t *testing.T) {
		net := mk(t)
		a, _ := net.Endpoint("empA")
		defer a.Close()
		b, _ := net.Endpoint("empB")
		defer b.Close()
		col := newCollector()
		b.Handle(col.handler)
		if err := a.Send(b.Addr(), "nil", nil); err != nil {
			t.Fatal(err)
		}
		msgs := col.wait(t, 1)
		if len(msgs[0].Payload) != 0 {
			t.Fatalf("payload = %v", msgs[0].Payload)
		}
	})
}

func TestInMemNetwork(t *testing.T) {
	testNetworkBasics(t, func(t *testing.T) Network { return NewInMem(nil) })
}

func TestTCPNetwork(t *testing.T) {
	testNetworkBasics(t, func(t *testing.T) Network { return NewTCP() })
}

func TestInMemUnknownDestination(t *testing.T) {
	net := NewInMem(nil)
	a, _ := net.Endpoint("a")
	defer a.Close()
	if err := a.Send("ghost", "x", nil); err != ErrUnreachable {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestInMemDuplicateName(t *testing.T) {
	net := NewInMem(nil)
	_, err := net.Endpoint("dup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("dup"); err == nil {
		t.Fatal("duplicate endpoint name accepted")
	}
	if _, err := net.Endpoint(""); err == nil {
		t.Fatal("empty endpoint name accepted")
	}
}

func TestInMemPartition(t *testing.T) {
	model := netsim.New(netsim.Link{})
	net := NewInMem(model)
	a, _ := net.Endpoint("a")
	defer a.Close()
	b, _ := net.Endpoint("b")
	defer b.Close()
	col := newCollector()
	b.Handle(col.handler)
	model.Partition("a", "b")
	if err := a.Send("b", "x", nil); err != ErrUnreachable {
		t.Fatalf("partitioned send err = %v, want ErrUnreachable", err)
	}
	model.Heal("a", "b")
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatalf("healed send failed: %v", err)
	}
	col.wait(t, 1)
}

func TestInMemMessagesBeforeHandlerAreQueued(t *testing.T) {
	net := NewInMem(nil)
	a, _ := net.Endpoint("a")
	defer a.Close()
	b, _ := net.Endpoint("b")
	defer b.Close()
	if err := a.Send("b", "early", []byte("1")); err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	b.Handle(col.handler)
	msgs := col.wait(t, 1)
	if msgs[0].Kind != "early" {
		t.Fatalf("queued message lost: %+v", msgs)
	}
}

func TestInMemSendToClosedEndpoint(t *testing.T) {
	net := NewInMem(nil)
	a, _ := net.Endpoint("a")
	defer a.Close()
	b, _ := net.Endpoint("b")
	b.Handle(func(Message) {})
	b.Close()
	if err := a.Send("b", "x", nil); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
}

func TestTCPSendToDeadAddressFails(t *testing.T) {
	net := NewTCP()
	a, _ := net.Endpoint("")
	defer a.Close()
	if err := a.Send("127.0.0.1:1", "x", nil); err == nil {
		t.Fatal("send to dead address succeeded")
	}
}

func TestTCPRedialAfterPeerRestart(t *testing.T) {
	netw := NewTCP()
	a, _ := netw.Endpoint("")
	defer a.Close()
	b, _ := netw.Endpoint("")
	col := newCollector()
	b.Handle(col.handler)
	if err := a.Send(b.Addr(), "one", nil); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	b.Close()
	// Writes to a dead peer may land in kernel buffers before the RST
	// arrives, so failure is only guaranteed eventually: the cache must
	// self-heal (drop the dead conn, redial, observe refusal).
	deadline := time.After(5 * time.Second)
	for {
		if err := a.Send(b.Addr(), "again", nil); err != nil {
			return // observed the failure; cache healed
		}
		select {
		case <-deadline:
			t.Fatal("sends to closed peer endpoint kept succeeding")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(kind string, from string, payload []byte) bool {
		if len(kind) > 1000 || len(from) > 1000 || len(payload) > 100000 {
			return true
		}
		var buf bytes.Buffer
		in := Message{From: Addr(from), Kind: kind, Payload: payload}
		if err := writeFrame(&buf, in); err != nil {
			return false
		}
		out, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return out.Kind == kind && out.From == Addr(from) && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, Message{Kind: "k", Payload: make([]byte, maxFrame+1)})
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadFrameCorrupt(t *testing.T) {
	// Frame claims a kind longer than the body.
	raw := []byte{0, 0, 0, 4, 0xff, 0xff, 0, 0}
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

func TestInMemConcurrentSenders(t *testing.T) {
	net := NewInMem(nil)
	dst, _ := net.Endpoint("dst")
	defer dst.Close()
	col := newCollector()
	dst.Handle(col.handler)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := net.Endpoint(fmt.Sprintf("s%d", s))
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		wg.Add(1)
		go func(ep Endpoint, id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send("dst", "m", []byte(fmt.Sprintf("%d:%d", id, i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(ep, s)
	}
	wg.Wait()
	msgs := col.wait(t, senders*per)
	// Per-sender FIFO must hold even under interleaving.
	next := make(map[Addr]int)
	for _, m := range msgs {
		var id, i int
		fmt.Sscanf(string(m.Payload), "%d:%d", &id, &i)
		if next[m.From] != i {
			t.Fatalf("sender %v out of order: got %d want %d", m.From, i, next[m.From])
		}
		next[m.From]++
	}
}
