package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is a Network whose endpoints are real TCP listeners on the loopback (or
// any) interface. It is the live-mode transport for cmd/vced and cmd/vcerun.
type TCP struct {
	// ListenHost is the interface to bind; defaults to 127.0.0.1.
	ListenHost string
}

// NewTCP returns a TCP network binding loopback listeners.
func NewTCP() *TCP { return &TCP{ListenHost: "127.0.0.1"} }

// Endpoint implements Network. The name parameter is ignored; the endpoint's
// address is its listener's host:port.
func (t *TCP) Endpoint(string) (Endpoint, error) {
	host := t.ListenHost
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &tcpEndpoint{
		ln:    ln,
		addr:  Addr(ln.Addr().String()),
		conns: make(map[Addr]net.Conn),
		ready: make(chan struct{}),
	}
	go ep.acceptLoop()
	return ep, nil
}

type tcpEndpoint struct {
	ln   net.Listener
	addr Addr

	mu      sync.Mutex
	conns   map[Addr]net.Conn // outbound connection cache
	handler Handler
	closed  bool

	ready   chan struct{} // closed once a handler is installed
	readyMu sync.Once

	deliverMu sync.Mutex // serializes handler invocations
}

func (e *tcpEndpoint) Addr() Addr { return e.addr }

func (e *tcpEndpoint) Handle(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
	e.readyMu.Do(func() { close(e.ready) })
}

func (e *tcpEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer conn.Close()
	<-e.ready
	for {
		msg, err := readFrame(conn)
		if err != nil {
			return
		}
		msg.To = e.addr
		e.mu.Lock()
		h := e.handler
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			// One message at a time per endpoint, matching InMem.
			e.deliverMu.Lock()
			h(msg)
			e.deliverMu.Unlock()
		}
	}
}

func (e *tcpEndpoint) Send(to Addr, kind string, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	conn, ok := e.conns[to]
	e.mu.Unlock()
	if !ok {
		var err error
		conn, err = net.Dial("tcp", string(to))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		e.mu.Lock()
		if cached, race := e.conns[to]; race {
			// Another goroutine dialed concurrently; keep one.
			e.mu.Unlock()
			conn.Close()
			conn = cached
		} else {
			e.conns[to] = conn
			e.mu.Unlock()
		}
	}
	err := writeFrame(conn, Message{From: e.addr, To: to, Kind: kind, Payload: payload})
	if err != nil {
		// Connection went bad; drop it so the next send redials.
		e.mu.Lock()
		if e.conns[to] == conn {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		conn.Close()
		return fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	return nil
}

func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = make(map[Addr]net.Conn)
	e.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	e.readyMu.Do(func() { close(e.ready) })
	return e.ln.Close()
}

// Frame layout: u32 frame length, then u16-prefixed kind, u16-prefixed from
// address, remainder payload. Big-endian, like all VCE wire formats.
const maxFrame = 64 << 20 // 64 MiB: largest migration image the repo ships

func writeFrame(w io.Writer, m Message) error {
	kind := []byte(m.Kind)
	from := []byte(m.From)
	if len(kind) > 0xffff || len(from) > 0xffff {
		return fmt.Errorf("transport: kind/from too long")
	}
	total := 2 + len(kind) + 2 + len(from) + len(m.Payload)
	if total > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", total)
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf, uint32(total))
	off := 4
	binary.BigEndian.PutUint16(buf[off:], uint16(len(kind)))
	off += 2
	off += copy(buf[off:], kind)
	binary.BigEndian.PutUint16(buf[off:], uint16(len(from)))
	off += 2
	off += copy(buf[off:], from)
	copy(buf[off:], m.Payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total > maxFrame {
		return Message{}, fmt.Errorf("transport: oversized frame %d", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Message{}, err
	}
	if len(buf) < 2 {
		return Message{}, fmt.Errorf("transport: short frame")
	}
	kindLen := int(binary.BigEndian.Uint16(buf))
	off := 2
	if off+kindLen+2 > len(buf) {
		return Message{}, fmt.Errorf("transport: corrupt frame")
	}
	kind := string(buf[off : off+kindLen])
	off += kindLen
	fromLen := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if off+fromLen > len(buf) {
		return Message{}, fmt.Errorf("transport: corrupt frame")
	}
	from := string(buf[off : off+fromLen])
	off += fromLen
	payload := buf[off:]
	return Message{From: Addr(from), Kind: kind, Payload: payload}, nil
}
