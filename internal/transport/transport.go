// Package transport provides the message-passing substrate beneath the Isis
// layer: named endpoints exchanging typed, opaque-payload messages. Two
// implementations share one interface — an in-memory network for tests,
// examples and deterministic fault injection, and a TCP network for real
// multi-process deployment (cmd/vced / cmd/vcerun).
//
// Delivery guarantees (both implementations): messages between a live sender
// and a live receiver are delivered reliably and in FIFO order per
// sender→receiver pair; handlers run one message at a time per endpoint.
// Those are the guarantees Isis builds its stronger orderings on.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"vce/internal/netsim"
)

// Addr identifies an endpoint. In-memory addresses are plain names; TCP
// addresses are "host:port" strings.
type Addr string

// Message is one unit of communication.
type Message struct {
	// From is the sender's address.
	From Addr
	// To is the recipient's address.
	To Addr
	// Kind is an application-level message type tag.
	Kind string
	// Payload is the opaque message body.
	Payload []byte
}

// Handler consumes inbound messages. It is invoked sequentially per endpoint.
type Handler func(Message)

// Endpoint is one communication port on a network.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() Addr
	// Send transmits a message; it fails if the destination is unknown,
	// unreachable or closed.
	Send(to Addr, kind string, payload []byte) error
	// Handle installs the inbound message handler. Install before
	// exchanging messages; replacing it later is allowed.
	Handle(h Handler)
	// Close detaches the endpoint; subsequent Sends to it fail.
	Close() error
}

// Network creates endpoints.
type Network interface {
	// Endpoint creates a new endpoint. The name is advisory for in-memory
	// networks (it becomes the address) and ignored by TCP networks
	// (which allocate host:port addresses).
	Endpoint(name string) (Endpoint, error)
}

// ErrClosed is returned when sending from or to a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnreachable is returned when the destination does not exist or the
// network model says the pair is partitioned.
var ErrUnreachable = errors.New("transport: destination unreachable")

// InMem is an in-process Network. An optional netsim.Model injects
// partitions: sends across a partitioned pair fail exactly like a dead link.
type InMem struct {
	mu        sync.RWMutex
	endpoints map[Addr]*inmemEndpoint
	model     *netsim.Model
}

// NewInMem returns an in-memory network. model may be nil (fully connected).
func NewInMem(model *netsim.Model) *InMem {
	return &InMem{endpoints: make(map[Addr]*inmemEndpoint), model: model}
}

// Endpoint implements Network.
func (n *InMem) Endpoint(name string) (Endpoint, error) {
	if name == "" {
		return nil, fmt.Errorf("transport: empty endpoint name")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	addr := Addr(name)
	if _, exists := n.endpoints[addr]; exists {
		return nil, fmt.Errorf("transport: endpoint %q already exists", name)
	}
	ep := &inmemEndpoint{net: n, addr: addr}
	ep.cond = sync.NewCond(&ep.mu)
	n.endpoints[addr] = ep
	go ep.dispatch()
	return ep, nil
}

func (n *InMem) lookup(addr Addr) (*inmemEndpoint, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.endpoints[addr]
	return ep, ok
}

func (n *InMem) drop(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.endpoints, addr)
}

type inmemEndpoint struct {
	net  *InMem
	addr Addr

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Message
	closed  bool
	handler Handler
}

func (e *inmemEndpoint) Addr() Addr { return e.addr }

func (e *inmemEndpoint) Handle(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
	e.cond.Broadcast() // wake dispatch for messages queued before the handler
}

func (e *inmemEndpoint) Send(to Addr, kind string, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	if e.net.model != nil && !e.net.model.Reachable(string(e.addr), string(to)) {
		return ErrUnreachable
	}
	dst, ok := e.net.lookup(to)
	if !ok {
		return ErrUnreachable
	}
	msg := Message{From: e.addr, To: to, Kind: kind, Payload: payload}
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		return ErrClosed
	}
	dst.queue = append(dst.queue, msg)
	dst.cond.Signal()
	return nil
}

// dispatch delivers queued messages to the handler sequentially, preserving
// arrival order. Messages arriving before a handler is installed wait.
func (e *inmemEndpoint) dispatch() {
	for {
		e.mu.Lock()
		for !e.closed && (len(e.queue) == 0 || e.handler == nil) {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		msg := e.queue[0]
		e.queue = e.queue[1:]
		h := e.handler
		e.mu.Unlock()
		h(msg)
	}
}

func (e *inmemEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.net.drop(e.addr)
	return nil
}
