// Package obs is the engine's observability layer: structured telemetry
// for scenario sweeps and the discrete-event kernel under them.
//
// A Recorder collects, per (instance, run) grid cell, a wall-clock span
// with queue-wait/setup/simulate/measure attribution, the worker lane the
// cell executed on, whether it was replayed from the result cache, and the
// kernel's traffic counters (events scheduled/fired/cancelled, heap
// high-water, audit invocations, machine state changes). Sweep-level spans
// (setup, execute, merge) land on a dedicated lane. The recorded registry
// is emitted three ways:
//
//   - WriteTrace: a Chrome trace-event JSON document loadable in Perfetto
//     (ui.perfetto.dev) or chrome://tracing — the timeline view that turns
//     "the sweep is slow" into "lane 3 sat idle behind one 12 ms cell";
//   - WriteSummary / Snapshot: a machine-readable summary (telemetry.json)
//     with per-cell records and aggregate phase/counter totals;
//   - String: the Snapshot as compact JSON, satisfying expvar.Var, so a
//     long-running service can expvar.Publish a live recorder.
//
// Wall-clock measurements exist only in these artifacts. Nothing here
// feeds the Report, cell keys or golden artifacts: telemetry observes the
// sweep, it never participates in it. The off-path contract is equally
// strict — a nil Recorder means the engine takes no clock readings at all,
// and the kernel-level counters cost one nil check per queue operation
// when detached (vtime.Sim.SetStats).
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sort"
	"sync"
	"time"
)

// publishMu serializes Publish so concurrent first registrations of the
// same name cannot both pass the existence check.
var publishMu sync.Mutex

// Publish registers v under name in the process-wide expvar registry,
// tolerating re-registration: expvar.Publish panics on a duplicate name,
// which makes it unusable from code that can run more than once per
// process (a restarted sweep service, package tests constructing several
// servers). The first registration wins; later calls are no-ops.
func Publish(name string, v expvar.Var) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, v)
	}
}

// KernelCounters aggregates one run's (or one sweep's) discrete-event
// kernel traffic, fed by vtime.Stats plus the cluster's change counter.
type KernelCounters struct {
	// Scheduled, Fired and Cancelled count event-queue operations.
	Scheduled int64 `json:"scheduled"`
	Fired     int64 `json:"fired"`
	Cancelled int64 `json:"cancelled"`
	// AuditCalls counts kernel audit-hook invocations (nonzero only for
	// audited runs).
	AuditCalls int64 `json:"audit_calls"`
	// HeapMax is the high-water pending-event queue depth.
	HeapMax int `json:"heap_max"`
	// StateChanges counts simulated machine state changes (task
	// arrivals/departures, load steps, suspension flips).
	StateChanges int64 `json:"state_changes"`
}

// Merge accumulates o into k: counters sum, high-water marks take the max.
func (k *KernelCounters) Merge(o KernelCounters) {
	k.Scheduled += o.Scheduled
	k.Fired += o.Fired
	k.Cancelled += o.Cancelled
	k.AuditCalls += o.AuditCalls
	if o.HeapMax > k.HeapMax {
		k.HeapMax = o.HeapMax
	}
	k.StateChanges += o.StateChanges
}

// CacheStats mirrors the result store's traffic counters
// (internal/scenario/store.Stats) without importing it. PutErrors counts
// write-through failures — a read-only or full cache directory costs reuse
// silently unless this is surfaced.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Corrupt   uint64 `json:"corrupt"`
	PutErrors uint64 `json:"put_errors"`
}

// Add returns the entrywise sum — how per-shard stats aggregate at merge.
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Corrupt:   s.Corrupt + o.Corrupt,
		PutErrors: s.PutErrors + o.PutErrors,
	}
}

// RunTrace receives one simulated run's phase boundaries and kernel
// counters from the engine: the scenario controller passes a fresh
// RunTrace into the run when telemetry is on and folds the result into a
// Cell record.
type RunTrace struct {
	// Setup covers world generation and policy wiring; Simulate is the
	// kernel's event loop (RunUntil); Measure is index extraction after
	// the kernel quiesced.
	Setup, Simulate, Measure time.Duration
	// Kernel is the run's event-kernel traffic.
	Kernel KernelCounters
}

// Cell is one recorded (instance, run) execution. Offsets are relative to
// the recorder's origin (New); a cached cell has zero phase durations and
// zero kernel counters — it simulated nothing.
type Cell struct {
	Sched     string
	Migration string
	Run       int
	// Cached marks a run replayed from the result cache.
	Cached bool
	// Lane is the worker lane the cell executed on (1-based; lane 0 is
	// the sweep's own track).
	Lane int
	// Enqueued is when the cell's job became runnable (grid feed);
	// Start/End bound the worker's execution. Start−Enqueued is queue
	// wait; End−Start is compute (including cache lookup).
	Enqueued, Start, End time.Duration
	// Setup/Simulate/Measure attribute the compute interval (RunTrace).
	Setup, Simulate, Measure time.Duration
	Kernel                   KernelCounters
}

// span is one sweep-level interval on the recorder's lane 0.
type span struct {
	name       string
	start, end time.Duration
}

// Recorder collects one sweep's telemetry. Safe for concurrent use: the
// executor's worker goroutines record cells while the fan-in goroutine
// records sweep spans. The zero value is not usable; construct with New.
type Recorder struct {
	origin time.Time

	mu       sync.Mutex
	workers  int
	cells    []Cell
	spans    []span
	cache    *CacheStats
	counters map[string]int64
}

// New returns an empty Recorder with its wall-clock origin at now. All
// recorded offsets are relative to this instant.
func New() *Recorder {
	return &Recorder{origin: time.Now()}
}

// Elapsed returns the wall-clock offset since the recorder's origin — the
// timestamp base every recorded span uses.
func (r *Recorder) Elapsed() time.Duration { return time.Since(r.origin) }

// SetWorkers records the sweep's worker-pool width.
func (r *Recorder) SetWorkers(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers = n
}

// RecordCell appends one executed grid cell.
func (r *Recorder) RecordCell(c Cell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells = append(r.cells, c)
}

// RecordSpan appends one sweep-level interval (lane 0) such as "setup",
// "execute" or "merge".
func (r *Recorder) RecordSpan(name string, start, end time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, span{name: name, start: start, end: end})
}

// SetCacheStats records the result store's traffic for the sweep.
func (r *Recorder) SetCacheStats(s CacheStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = &s
}

// AddCounter accumulates a named sweep-level counter (e.g. progress
// callbacks fired). Counters land in the summary's "counters" map.
func (r *Recorder) AddCounter(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += delta
}

// ms converts a duration to milliseconds with sub-ms resolution.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// CellSummary is one cell's record in the summary artifact. The wall-clock
// fields (every *_ms field, and Lane, which depends on scheduling) vary
// run to run; everything else — identity, cached flag, kernel counters —
// is deterministic for a fixed (spec, seed) whatever the worker count.
type CellSummary struct {
	Sched       string         `json:"sched"`
	Migration   string         `json:"migration"`
	Run         int            `json:"run"`
	Cached      bool           `json:"cached"`
	Lane        int            `json:"lane"`
	QueueWaitMS float64        `json:"queue_wait_ms"`
	SetupMS     float64        `json:"setup_ms"`
	SimulateMS  float64        `json:"simulate_ms"`
	MeasureMS   float64        `json:"measure_ms"`
	TotalMS     float64        `json:"total_ms"`
	Kernel      KernelCounters `json:"kernel"`
}

// SpanSummary is one sweep-level span in the summary artifact.
type SpanSummary struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// Totals aggregates the cells: phase sums across the fleet of lanes (so
// SimulateMS can exceed WallMS on a parallel sweep) and merged kernel
// counters.
type Totals struct {
	Cells       int            `json:"cells"`
	CachedCells int            `json:"cached_cells"`
	QueueWaitMS float64        `json:"queue_wait_ms"`
	SetupMS     float64        `json:"setup_ms"`
	SimulateMS  float64        `json:"simulate_ms"`
	MeasureMS   float64        `json:"measure_ms"`
	ComputeMS   float64        `json:"compute_ms"`
	Kernel      KernelCounters `json:"kernel"`
}

// Summary is the machine-readable snapshot of a recorder: the
// telemetry.json artifact and the expvar payload. Cells are sorted by
// (sched, migration, run) so the structure — names, counts, ordering and
// kernel counters — is identical across worker counts; only the
// wall-clock fields differ.
type Summary struct {
	Schema   int              `json:"schema"`
	WallMS   float64          `json:"wall_ms"`
	Workers  int              `json:"workers"`
	Totals   Totals           `json:"totals"`
	Cache    *CacheStats      `json:"cache,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Spans    []SpanSummary    `json:"spans"`
	Cells    []CellSummary    `json:"cells"`
}

// SummarySchema versions the Summary JSON shape.
const SummarySchema = 1

// Snapshot renders the recorder's current contents as a Summary. Safe to
// call concurrently with recording (a live service can serve it mid-sweep).
func (r *Recorder) Snapshot() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		Schema:  SummarySchema,
		WallMS:  ms(time.Since(r.origin)),
		Workers: r.workers,
	}
	if r.cache != nil {
		c := *r.cache
		s.Cache = &c
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			s.Counters[k] = v
		}
	}
	cells := make([]Cell, len(r.cells))
	copy(cells, r.cells)
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Sched != b.Sched {
			return a.Sched < b.Sched
		}
		if a.Migration != b.Migration {
			return a.Migration < b.Migration
		}
		return a.Run < b.Run
	})
	s.Cells = make([]CellSummary, len(cells))
	for i, c := range cells {
		cs := CellSummary{
			Sched:       c.Sched,
			Migration:   c.Migration,
			Run:         c.Run,
			Cached:      c.Cached,
			Lane:        c.Lane,
			QueueWaitMS: ms(c.Start - c.Enqueued),
			SetupMS:     ms(c.Setup),
			SimulateMS:  ms(c.Simulate),
			MeasureMS:   ms(c.Measure),
			TotalMS:     ms(c.End - c.Start),
			Kernel:      c.Kernel,
		}
		s.Cells[i] = cs
		s.Totals.Cells++
		if c.Cached {
			s.Totals.CachedCells++
		}
		s.Totals.QueueWaitMS += cs.QueueWaitMS
		s.Totals.SetupMS += cs.SetupMS
		s.Totals.SimulateMS += cs.SimulateMS
		s.Totals.MeasureMS += cs.MeasureMS
		s.Totals.ComputeMS += cs.TotalMS
		s.Totals.Kernel.Merge(c.Kernel)
	}
	spans := make([]span, len(r.spans))
	copy(spans, r.spans)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].name < spans[j].name
	})
	s.Spans = make([]SpanSummary, len(spans))
	for i, sp := range spans {
		s.Spans[i] = SpanSummary{Name: sp.name, StartMS: ms(sp.start), DurMS: ms(sp.end - sp.start)}
	}
	return s
}

// WriteSummary writes the Snapshot as indented JSON — the telemetry.json
// sweep artifact.
func (r *Recorder) WriteSummary(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the Snapshot as compact JSON. It makes *Recorder satisfy
// the expvar.Var interface, so a service exposes a live sweep with
// expvar.Publish("sweep", recorder).
func (r *Recorder) String() string {
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		return `{"error":"obs: unserializable snapshot"}`
	}
	return string(data)
}
