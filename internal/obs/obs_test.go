package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// record builds a small two-lane recorder: one computed cell, one cached
// cell, and the sweep-level spans the executor would record.
func record(t *testing.T) *Recorder {
	t.Helper()
	r := New()
	r.SetWorkers(2)
	r.RecordSpan("setup", 0, time.Millisecond)
	r.RecordCell(Cell{
		Sched: "greedy-best-fit", Migration: "none", Run: 0, Lane: 1,
		Enqueued: time.Millisecond, Start: 2 * time.Millisecond, End: 10 * time.Millisecond,
		Setup: 2 * time.Millisecond, Simulate: 5 * time.Millisecond, Measure: time.Millisecond,
		Kernel: KernelCounters{Scheduled: 100, Fired: 90, Cancelled: 10, HeapMax: 7, StateChanges: 40},
	})
	r.RecordCell(Cell{
		Sched: "greedy-best-fit", Migration: "none", Run: 1, Lane: 2, Cached: true,
		Enqueued: time.Millisecond, Start: 2 * time.Millisecond, End: 2*time.Millisecond + 40*time.Microsecond,
	})
	r.RecordSpan("execute", time.Millisecond, 11*time.Millisecond)
	r.RecordSpan("merge", 11*time.Millisecond, 12*time.Millisecond)
	r.SetCacheStats(CacheStats{Hits: 1, Misses: 1})
	return r
}

// TestTraceEventShape validates the emitted document against the Chrome
// trace-event JSON contract Perfetto loads: a traceEvents array whose
// entries all carry name/ph/pid/tid, non-negative timestamps, positive
// durations on complete events, thread-name metadata for every used lane,
// and a scope on instant events.
func TestTraceEventShape(t *testing.T) {
	var buf bytes.Buffer
	if err := record(t).WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	threadNames := map[int]string{}
	var cells, phases, instants int
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Fatalf("event with empty name: %+v", ev)
		}
		if ev.Pid == nil || ev.Tid == nil || ev.Ts == nil {
			t.Fatalf("event %q missing pid/tid/ts", ev.Name)
		}
		if *ev.Ts < 0 {
			t.Fatalf("event %q has negative ts %d", ev.Name, *ev.Ts)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur <= 0 {
				t.Fatalf("complete event %q has non-positive dur %d", ev.Name, ev.Dur)
			}
		case "i":
			if ev.S == "" {
				t.Fatalf("instant event %q has no scope", ev.Name)
			}
			instants++
		case "M":
			if ev.Name == "thread_name" {
				threadNames[*ev.Tid], _ = ev.Args["name"].(string)
			}
		default:
			t.Fatalf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
		if strings.Contains(ev.Name, "#") {
			cells++
			for _, key := range []string{"cached", "queue_wait_ms", "scheduled", "fired"} {
				if _, ok := ev.Args[key]; !ok {
					t.Errorf("cell %q missing arg %q", ev.Name, key)
				}
			}
		}
		if ev.Name == "setup" || ev.Name == "simulate" || ev.Name == "measure" {
			if ev.Ph == "X" && *ev.Tid != 0 {
				phases++
			}
		}
	}
	if cells != 2 {
		t.Errorf("trace has %d cell events, want 2", cells)
	}
	if phases != 3 {
		t.Errorf("trace has %d phase slices, want 3 (cached cell emits none)", phases)
	}
	if instants != 1 {
		t.Errorf("trace has %d cache-hit instants, want 1", instants)
	}
	for _, tid := range []int{0, 1, 2} {
		if threadNames[tid] == "" {
			t.Errorf("lane %d has no thread_name metadata", tid)
		}
	}
}

// TestSummaryTotals pins the snapshot aggregation: cell ordering, cached
// counting, phase sums and merged kernel counters.
func TestSummaryTotals(t *testing.T) {
	s := record(t).Snapshot()
	if s.Schema != SummarySchema || s.Workers != 2 {
		t.Fatalf("schema/workers = %d/%d", s.Schema, s.Workers)
	}
	if len(s.Cells) != 2 || s.Totals.Cells != 2 || s.Totals.CachedCells != 1 {
		t.Fatalf("cells = %d, totals = %+v", len(s.Cells), s.Totals)
	}
	if s.Cells[0].Run != 0 || s.Cells[1].Run != 1 {
		t.Fatalf("cells not in run order: %+v", s.Cells)
	}
	if s.Totals.Kernel.Scheduled != 100 || s.Totals.Kernel.HeapMax != 7 {
		t.Fatalf("kernel totals = %+v", s.Totals.Kernel)
	}
	if got := s.Cells[0].QueueWaitMS; got != 1 {
		t.Fatalf("queue wait = %v ms, want 1", got)
	}
	if s.Totals.SimulateMS != 5 {
		t.Fatalf("simulate total = %v ms, want 5", s.Totals.SimulateMS)
	}
	if s.Cache == nil || s.Cache.Hits != 1 {
		t.Fatalf("cache stats = %+v", s.Cache)
	}
	if len(s.Spans) != 3 || s.Spans[0].Name != "setup" {
		t.Fatalf("spans = %+v", s.Spans)
	}
}

// TestExpvarString: String() must be the compact-JSON snapshot (the
// expvar.Var contract — expvar renders Var.String() verbatim as JSON).
func TestExpvarString(t *testing.T) {
	r := record(t)
	var v Summary
	if err := json.Unmarshal([]byte(r.String()), &v); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
	if v.Totals.Cells != 2 {
		t.Fatalf("String() snapshot totals = %+v", v.Totals)
	}
}

// TestKernelCountersMerge: counters sum, high waters max.
func TestKernelCountersMerge(t *testing.T) {
	a := KernelCounters{Scheduled: 1, Fired: 2, Cancelled: 3, AuditCalls: 4, HeapMax: 5, StateChanges: 6}
	a.Merge(KernelCounters{Scheduled: 10, Fired: 10, Cancelled: 10, AuditCalls: 10, HeapMax: 2, StateChanges: 10})
	want := KernelCounters{Scheduled: 11, Fired: 12, Cancelled: 13, AuditCalls: 14, HeapMax: 5, StateChanges: 16}
	if a != want {
		t.Fatalf("merge = %+v, want %+v", a, want)
	}
}
