package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// traceEvent is one entry of the Chrome trace-event format ("Trace Event
// Format", the JSON documents Perfetto and chrome://tracing load). Only
// the event kinds we emit are modeled: "X" (complete span), "i" (instant)
// and "M" (metadata: process/thread names).
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"` // microseconds from the recorder origin
	Dur  int64  `json:"dur,omitempty"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	// S is the instant-event scope ("t" = thread).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the top-level JSON object.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// tracePid is the single process id all events carry.
const tracePid = 1

func us(d time.Duration) int64 { return int64(d / time.Microsecond) }

// spanDurUS converts a span's extent to a trace duration, flooring at 1 µs
// so sub-microsecond cells (cache hits) stay visible and valid.
func spanDurUS(start, end time.Duration) int64 {
	d := us(end - start)
	if d < 1 {
		d = 1
	}
	return d
}

// WriteTrace emits the recorder's contents as a Chrome trace-event JSON
// document: one track (tid) per worker lane plus lane 0 for the sweep's
// own phases, a complete-event per cell with nested setup/simulate/measure
// slices, and an instant marker on every cache replay. Load the file in
// ui.perfetto.dev or chrome://tracing.
func (r *Recorder) WriteTrace(w io.Writer) error {
	r.mu.Lock()
	cells := make([]Cell, len(r.cells))
	copy(cells, r.cells)
	spans := make([]span, len(r.spans))
	copy(spans, r.spans)
	workers := r.workers
	r.mu.Unlock()

	var evs []traceEvent
	// Metadata: name the process and every lane. Lanes are discovered from
	// the records rather than assumed from the worker count, so a partial
	// or serial sweep still names exactly the tracks it used.
	lanes := map[int]bool{0: true}
	for _, c := range cells {
		lanes[c.Lane] = true
	}
	evs = append(evs, traceEvent{
		Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
		Args: map[string]any{"name": fmt.Sprintf("vcebench sweep (workers=%d)", workers)},
	})
	laneIDs := make([]int, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)
	for _, l := range laneIDs {
		name := "sweep"
		if l > 0 {
			name = fmt.Sprintf("worker %d", l)
		}
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: l,
			Args: map[string]any{"name": name},
		})
	}

	for _, sp := range spans {
		evs = append(evs, traceEvent{
			Name: sp.name, Cat: "sweep", Ph: "X", Pid: tracePid, Tid: 0,
			Ts: us(sp.start), Dur: spanDurUS(sp.start, sp.end),
		})
	}

	for _, c := range cells {
		name := fmt.Sprintf("%s/%s#%d", c.Sched, c.Migration, c.Run)
		args := map[string]any{
			"run":           c.Run,
			"cached":        c.Cached,
			"queue_wait_ms": ms(c.Start - c.Enqueued),
			"scheduled":     c.Kernel.Scheduled,
			"fired":         c.Kernel.Fired,
			"cancelled":     c.Kernel.Cancelled,
			"heap_max":      c.Kernel.HeapMax,
			"state_changes": c.Kernel.StateChanges,
		}
		evs = append(evs, traceEvent{
			Name: name, Cat: "cell", Ph: "X", Pid: tracePid, Tid: c.Lane,
			Ts: us(c.Start), Dur: spanDurUS(c.Start, c.End), Args: args,
		})
		if c.Cached {
			evs = append(evs, traceEvent{
				Name: "cache-hit", Cat: "cache", Ph: "i", S: "t",
				Pid: tracePid, Tid: c.Lane, Ts: us(c.Start),
			})
			continue
		}
		// Phase slices nest under the cell slice: laid out consecutively
		// from the cell start, clamped so children never escape the parent
		// (the residue — cache lookup, bookkeeping — stays unattributed).
		at := c.Start
		for _, ph := range []struct {
			name string
			dur  time.Duration
		}{{"setup", c.Setup}, {"simulate", c.Simulate}, {"measure", c.Measure}} {
			if ph.dur <= 0 {
				continue
			}
			end := at + ph.dur
			if end > c.End {
				end = c.End
			}
			if end <= at {
				break
			}
			evs = append(evs, traceEvent{
				Name: ph.name, Cat: "phase", Ph: "X", Pid: tracePid, Tid: c.Lane,
				Ts: us(at), Dur: spanDurUS(at, end),
			})
			at = end
		}
	}

	// Stable order: metadata first, then by (ts, tid, name) — keeps the
	// artifact deterministic in structure for a fixed record set.
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})

	enc := json.NewEncoder(w)
	return enc.Encode(traceDoc{DisplayTimeUnit: "ms", TraceEvents: evs})
}
