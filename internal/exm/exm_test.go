package exm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vce/internal/arch"
	"vce/internal/channel"
	"vce/internal/isis"
	"vce/internal/taskgraph"
	"vce/internal/transport"
	"vce/internal/vfs"
)

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if cond() {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// cluster is a live in-memory VCE: one workstation group of n daemons plus a
// shared registry and hub.
type cluster struct {
	net      *transport.InMem
	registry *Registry
	hub      *channel.Hub
	daemons  []*Daemon
	loads    []float64 // mutable per-daemon base loads
	mu       sync.Mutex
}

func (c *cluster) setLoad(i int, v float64) {
	c.mu.Lock()
	c.loads[i] = v
	c.mu.Unlock()
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{
		net:      transport.NewInMem(nil),
		registry: NewRegistry(),
		hub:      channel.NewHub(),
		loads:    make([]float64, n),
	}
	isisCfg := isis.Config{
		HeartbeatEvery: 25 * time.Millisecond,
		FailAfter:      500 * time.Millisecond,
		ReplyTimeout:   300 * time.Millisecond,
	}
	var contact transport.Addr
	for i := 0; i < n; i++ {
		i := i
		cfg := DaemonConfig{
			Machine: arch.Machine{
				Name: fmt.Sprintf("ws%d", i), Class: arch.Workstation,
				Speed: 1, OS: "unix", MemoryMB: 64,
			},
			Registry: c.registry,
			Hub:      c.hub,
			BaseLoad: func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return c.loads[i]
			},
			MaxTasks: 4,
			Isis:     isisCfg,
		}
		cfg.Isis.Name = cfg.Machine.Name
		d, err := StartDaemon(c.net, "WORKSTATION", contact, cfg)
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		if i == 0 {
			contact = d.Addr()
		}
		c.daemons = append(c.daemons, d)
	}
	for _, d := range c.daemons {
		d := d
		eventually(t, "group formation", func() bool { return d.GroupSize() == n })
	}
	t.Cleanup(func() {
		for _, d := range c.daemons {
			d.Stop()
		}
	})
	return c
}

func (c *cluster) execProgram(t *testing.T) *ExecProgram {
	t.Helper()
	e, err := NewExecProgram(c.net, ExecConfig{
		Name:          fmt.Sprintf("exec-%p", t),
		Contacts:      map[arch.Class]transport.Addr{arch.Workstation: c.daemons[0].Addr()},
		LocalRegistry: c.registry,
		Hub:           c.hub,
		Timeout:       8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func wsGraph(t *testing.T, name string, tasks ...taskgraph.Task) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.New(name)
	for _, task := range tasks {
		if len(task.Requirements.Classes) == 0 {
			task.Requirements.Classes = []arch.Class{arch.Workstation}
		}
		if err := g.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestBiddingSelectsLeastLoaded(t *testing.T) {
	c := newCluster(t, 4)
	c.setLoad(0, 0.8)
	c.setLoad(1, 0.1) // least loaded: should win the bid
	c.setLoad(2, 0.5)
	c.setLoad(3, 0.9)
	var ran atomic.Value
	if err := c.registry.Register("/apps/one.vce", func(ctx ProgContext) error {
		ran.Store(ctx.Machine)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e := c.execProgram(t)
	report, err := e.Run(wsGraph(t, "app", taskgraph.Task{ID: "one", Program: "/apps/one.vce"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Placements) != 1 || report.Placements[0].Machine != "ws1" {
		t.Fatalf("placements = %+v, want ws1 (least loaded)", report.Placements)
	}
	if got := ran.Load(); got != "ws1" {
		t.Fatalf("program ran on %v", got)
	}
}

func TestMultiInstanceSpreadAcrossBidders(t *testing.T) {
	c := newCluster(t, 3)
	var mu sync.Mutex
	machines := map[string]int{}
	if err := c.registry.Register("/apps/collector.vce", func(ctx ProgContext) error {
		mu.Lock()
		machines[ctx.Machine]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e := c.execProgram(t)
	g := wsGraph(t, "spread", taskgraph.Task{ID: "collector", Program: "/apps/collector.vce", MinInstances: 3})
	report, err := e.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Placements) != 3 {
		t.Fatalf("placements = %+v", report.Placements)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(machines) < 2 {
		t.Fatalf("3 instances ran on %v; expected spreading across bidders", machines)
	}
}

func TestAllocationErrorWhenInsufficient(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.registry.Register("/apps/x.vce", func(ProgContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	e := c.execProgram(t)
	// 2 daemons * 4 slots = 8 max; ask for 9.
	g := wsGraph(t, "big", taskgraph.Task{ID: "x", Program: "/apps/x.vce", MinInstances: 9})
	if _, err := e.Run(g); err == nil {
		t.Fatal("over-subscription did not produce an allocation error")
	}
}

func TestOverloadedDaemonsDecline(t *testing.T) {
	c := newCluster(t, 3)
	// Two daemons excessively loaded: only ws2 may bid.
	c.setLoad(0, 5.0)
	c.setLoad(1, 5.0)
	var ran atomic.Value
	if err := c.registry.Register("/apps/y.vce", func(ctx ProgContext) error {
		ran.Store(ctx.Machine)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e := c.execProgram(t)
	report, err := e.Run(wsGraph(t, "app", taskgraph.Task{ID: "y", Program: "/apps/y.vce"}))
	if err != nil {
		t.Fatal(err)
	}
	if report.Placements[0].Machine != "ws2" {
		t.Fatalf("placed on %s; overloaded daemons must not bid", report.Placements[0].Machine)
	}
}

func TestAllOverloadedIsAllocError(t *testing.T) {
	c := newCluster(t, 2)
	c.setLoad(0, 5.0)
	c.setLoad(1, 5.0)
	if err := c.registry.Register("/apps/z.vce", func(ProgContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	e := c.execProgram(t)
	if _, err := e.Run(wsGraph(t, "app", taskgraph.Task{ID: "z", Program: "/apps/z.vce"})); err == nil {
		t.Fatal("fully loaded group accepted work")
	}
}

func TestRequestViaNonLeaderIsForwarded(t *testing.T) {
	c := newCluster(t, 3)
	if err := c.registry.Register("/apps/f.vce", func(ProgContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	e, err := NewExecProgram(c.net, ExecConfig{
		Name: "exec-fwd",
		// Contact a non-leader daemon; the request must still be served.
		Contacts:      map[arch.Class]transport.Addr{arch.Workstation: c.daemons[2].Addr()},
		LocalRegistry: c.registry,
		Timeout:       8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(wsGraph(t, "fwd", taskgraph.Task{ID: "f", Program: "/apps/f.vce"})); err != nil {
		t.Fatalf("request via non-leader failed: %v", err)
	}
}

func TestPrecedenceWaves(t *testing.T) {
	c := newCluster(t, 2)
	var mu sync.Mutex
	var order []string
	record := func(name string) Program {
		return func(ProgContext) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	_ = c.registry.Register("/apps/first.vce", record("first"))
	_ = c.registry.Register("/apps/second.vce", record("second"))
	g := wsGraph(t, "pipeline",
		taskgraph.Task{ID: "first", Program: "/apps/first.vce"},
		taskgraph.Task{ID: "second", Program: "/apps/second.vce"},
	)
	if err := g.AddArc(taskgraph.Arc{From: "first", To: "second", Kind: taskgraph.Precedence}); err != nil {
		t.Fatal(err)
	}
	e := c.execProgram(t)
	report, err := e.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if report.Waves != 2 {
		t.Fatalf("waves = %d, want 2", report.Waves)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("execution order = %v", order)
	}
}

func TestLocalTaskRunsLocally(t *testing.T) {
	c := newCluster(t, 2)
	var localRan atomic.Bool
	_ = c.registry.Register("/apps/display.vce", func(ctx ProgContext) error {
		if ctx.Machine == "local" {
			localRan.Store(true)
		}
		return nil
	})
	e := c.execProgram(t)
	g := wsGraph(t, "snow", taskgraph.Task{ID: "display", Program: "/apps/display.vce", Local: true})
	report, err := e.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !localRan.Load() {
		t.Fatal("LOCAL task did not run on the user's workstation")
	}
	if report.Placements[0].Machine != "local" {
		t.Fatalf("placement = %+v", report.Placements[0])
	}
}

func TestTaskFailurePropagates(t *testing.T) {
	c := newCluster(t, 2)
	_ = c.registry.Register("/apps/bad.vce", func(ProgContext) error {
		return fmt.Errorf("segfault")
	})
	e := c.execProgram(t)
	_, err := e.Run(wsGraph(t, "app", taskgraph.Task{ID: "bad", Program: "/apps/bad.vce"}))
	if err == nil {
		t.Fatal("failing task reported success")
	}
}

func TestUnknownProgramFails(t *testing.T) {
	c := newCluster(t, 2)
	e := c.execProgram(t)
	_, err := e.Run(wsGraph(t, "app", taskgraph.Task{ID: "ghost", Program: "/apps/ghost.vce"}))
	if err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestRedundantExecutionFirstCopyWins(t *testing.T) {
	c := newCluster(t, 3)
	var starts atomic.Int64
	var kills atomic.Int64
	_ = c.registry.Register("/apps/red.vce", func(ctx ProgContext) error {
		starts.Add(1)
		if ctx.Copy == 0 {
			return nil // primary finishes immediately
		}
		select { // redundant copies linger until killed
		case <-ctx.Cancel:
			kills.Add(1)
			return nil
		case <-time.After(8 * time.Second):
			return nil
		}
	})
	task := taskgraph.Task{ID: "red", Program: "/apps/red.vce", Hint: taskgraph.Hints{Redundant: 3}}
	e := c.execProgram(t)
	report, err := e.Run(wsGraph(t, "app", task))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Placements) != 1 {
		t.Fatalf("placements = %+v", report.Placements)
	}
	eventually(t, "all copies started", func() bool { return starts.Load() == 3 })
	eventually(t, "redundant copies killed", func() bool { return kills.Load() == 2 })
}

func TestTerminateKillsLingerersOnAllMachines(t *testing.T) {
	c := newCluster(t, 3)
	var cancelled atomic.Int64
	_ = c.registry.Register("/apps/fast.vce", func(ProgContext) error { return nil })
	_ = c.registry.Register("/apps/slow.vce", func(ctx ProgContext) error {
		select {
		case <-ctx.Cancel:
			cancelled.Add(1)
		case <-time.After(8 * time.Second):
		}
		return nil
	})
	// Run an app whose graph fails at wave 2, leaving wave-1 lingerers.
	g := wsGraph(t, "mixed",
		taskgraph.Task{ID: "slow", Program: "/apps/slow.vce", MinInstances: 2},
	)
	e := c.execProgram(t)
	// The slow tasks never finish: the wave times out, Run terminates the
	// app, and the daemons must cancel them.
	eShort, err := NewExecProgram(c.net, ExecConfig{
		Name:          "exec-short",
		Contacts:      map[arch.Class]transport.Addr{arch.Workstation: c.daemons[0].Addr()},
		LocalRegistry: c.registry,
		Timeout:       300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eShort.Close()
	_ = e
	if _, err := eShort.Run(g); err == nil {
		t.Fatal("hung wave reported success")
	}
	eventually(t, "lingerers cancelled", func() bool { return cancelled.Load() == 2 })
}

func TestLeaderFailoverDuringOperationNewRequestsServed(t *testing.T) {
	c := newCluster(t, 3)
	_ = c.registry.Register("/apps/ok.vce", func(ProgContext) error { return nil })
	// Kill the leader.
	c.daemons[0].Stop()
	eventually(t, "failover", func() bool { return c.daemons[1].IsLeader() })
	// New execution program contacts a surviving daemon.
	e, err := NewExecProgram(c.net, ExecConfig{
		Name:          "exec-after-failover",
		Contacts:      map[arch.Class]transport.Addr{arch.Workstation: c.daemons[1].Addr()},
		LocalRegistry: c.registry,
		Timeout:       8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	report, err := e.Run(wsGraph(t, "app", taskgraph.Task{ID: "ok", Program: "/apps/ok.vce"}))
	if err != nil {
		t.Fatalf("post-failover run failed: %v", err)
	}
	if len(report.Placements) != 1 {
		t.Fatalf("placements = %+v", report.Placements)
	}
}

func TestAvailQuery(t *testing.T) {
	c := newCluster(t, 3)
	e := c.execProgram(t)
	if n := e.Avail("WORKSTATION"); n != 3 {
		t.Fatalf("Avail = %d, want 3", n)
	}
	if n := e.Avail("SYNC"); n != 0 {
		t.Fatalf("Avail(SYNC) = %d, want 0 (no contact)", n)
	}
	if n := e.Avail("NOSUCH"); n != 0 {
		t.Fatalf("Avail(NOSUCH) = %d", n)
	}
}

func TestConcurrentExecutionPrograms(t *testing.T) {
	// §5: "If several execution programs have requests outstanding at the
	// same time, Isis will construct different threads for each request."
	c := newCluster(t, 4)
	var count atomic.Int64
	_ = c.registry.Register("/apps/c.vce", func(ProgContext) error {
		count.Add(1)
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	const submitters = 4
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := NewExecProgram(c.net, ExecConfig{
				Name:          fmt.Sprintf("exec-conc-%d", i),
				Contacts:      map[arch.Class]transport.Addr{arch.Workstation: c.daemons[0].Addr()},
				LocalRegistry: c.registry,
				Timeout:       8 * time.Second,
			})
			if err != nil {
				errs <- err
				return
			}
			defer e.Close()
			g := wsGraph(t, fmt.Sprintf("app%d", i), taskgraph.Task{ID: "c", Program: "/apps/c.vce", MinInstances: 2})
			if _, err := e.Run(g); err != nil {
				errs <- fmt.Errorf("submitter %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if count.Load() != submitters*2 {
		t.Fatalf("instances run = %d, want %d", count.Load(), submitters*2)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", func(ProgContext) error { return nil }); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := r.Register("/x", nil); err == nil {
		t.Fatal("nil program accepted")
	}
	if err := r.Register("/x", func(ProgContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("/x", func(ProgContext) error { return nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, ok := r.Lookup("/x"); !ok {
		t.Fatal("lookup failed")
	}
	if len(r.Paths()) != 1 {
		t.Fatal("paths wrong")
	}
}

func TestChannelCommunicationBetweenTasks(t *testing.T) {
	// Producer and consumer communicate over a VCE channel while both run
	// on (possibly) different machines of the group.
	c := newCluster(t, 2)
	result := make(chan string, 1)
	_ = c.registry.Register("/apps/producer.vce", func(ctx ProgContext) error {
		port, err := ctx.Hub.Channel("pipe").CreatePort("producer")
		if err != nil {
			return err
		}
		// Wait for the consumer to connect, then send.
		for i := 0; i < 1000; i++ {
			if len(ctx.Hub.Channel("pipe").Ports()) >= 2 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		return port.Send([]byte("42"))
	})
	_ = c.registry.Register("/apps/consumer.vce", func(ctx ProgContext) error {
		port, err := ctx.Hub.Channel("pipe").CreatePort("consumer")
		if err != nil {
			return err
		}
		m, ok := port.Recv()
		if !ok {
			return fmt.Errorf("channel closed")
		}
		result <- string(m.Payload)
		return nil
	})
	g := wsGraph(t, "pipe",
		taskgraph.Task{ID: "producer", Program: "/apps/producer.vce"},
		taskgraph.Task{ID: "consumer", Program: "/apps/consumer.vce"},
	)
	if err := g.AddArc(taskgraph.Arc{From: "producer", To: "consumer", Kind: taskgraph.Stream, Channel: "pipe"}); err != nil {
		t.Fatal(err)
	}
	e := c.execProgram(t)
	if _, err := e.Run(g); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-result:
		if v != "42" {
			t.Fatalf("consumer got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never received")
	}
}

func TestRetryFaultTolerance(t *testing.T) {
	c := newCluster(t, 3)
	var attempts atomic.Int64
	// Fails twice, succeeds on the third dispatch.
	_ = c.registry.Register("/apps/flaky.vce", func(ctx ProgContext) error {
		if attempts.Add(1) <= 2 {
			return fmt.Errorf("transient crash %d", attempts.Load())
		}
		return nil
	})
	task := taskgraph.Task{ID: "flaky", Program: "/apps/flaky.vce",
		Hint: taskgraph.Hints{Retries: 2}}
	e := c.execProgram(t)
	report, err := e.Run(wsGraph(t, "app", task))
	if err != nil {
		t.Fatalf("retried run failed: %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
	if len(report.Placements) != 1 {
		t.Fatalf("placements = %+v", report.Placements)
	}
}

func TestRetriesExhaustedFails(t *testing.T) {
	c := newCluster(t, 2)
	var attempts atomic.Int64
	_ = c.registry.Register("/apps/dead.vce", func(ProgContext) error {
		attempts.Add(1)
		return fmt.Errorf("permanent failure")
	})
	task := taskgraph.Task{ID: "dead", Program: "/apps/dead.vce",
		Hint: taskgraph.Hints{Retries: 2}}
	e := c.execProgram(t)
	if _, err := e.Run(wsGraph(t, "app", task)); err == nil {
		t.Fatal("permanently failing task reported success")
	}
	if attempts.Load() != 3 { // initial + 2 retries
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
}

func TestNoRetryByDefault(t *testing.T) {
	c := newCluster(t, 2)
	var attempts atomic.Int64
	_ = c.registry.Register("/apps/once.vce", func(ProgContext) error {
		attempts.Add(1)
		return fmt.Errorf("boom")
	})
	e := c.execProgram(t)
	if _, err := e.Run(wsGraph(t, "app", taskgraph.Task{ID: "once", Program: "/apps/once.vce"})); err == nil {
		t.Fatal("failure swallowed")
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries requested)", attempts.Load())
	}
}

func TestInputFileStagingAtDispatch(t *testing.T) {
	c := newCluster(t, 2)
	fs := vfs.New()
	for _, d := range c.daemons {
		d.cfg.FS = fs
	}
	if err := fs.Create("/data/in.dat", 4096, "archive"); err != nil {
		t.Fatal(err)
	}
	var ranOn atomic.Value
	_ = c.registry.Register("/apps/staged.vce", func(ctx ProgContext) error {
		ranOn.Store(ctx.Machine)
		return nil
	})
	task := taskgraph.Task{ID: "staged", Program: "/apps/staged.vce",
		InputFiles: []string{"/data/in.dat"}}
	e := c.execProgram(t)
	if _, err := e.Run(wsGraph(t, "app", task)); err != nil {
		t.Fatal(err)
	}
	machine := ranOn.Load().(string)
	if !fs.HasCurrent("/data/in.dat", machine) {
		t.Fatalf("input not staged at %s", machine)
	}
	var staged int64
	for _, d := range c.daemons {
		staged += d.StagedBytes()
	}
	if staged != 4096 {
		t.Fatalf("staged bytes = %d, want 4096", staged)
	}
}

func TestMissingInputFileFailsDispatch(t *testing.T) {
	c := newCluster(t, 2)
	fs := vfs.New()
	for _, d := range c.daemons {
		d.cfg.FS = fs
	}
	_ = c.registry.Register("/apps/needsfile.vce", func(ProgContext) error { return nil })
	task := taskgraph.Task{ID: "needsfile", Program: "/apps/needsfile.vce",
		InputFiles: []string{"/data/ghost.dat"}}
	e := c.execProgram(t)
	if _, err := e.Run(wsGraph(t, "app", task)); err == nil {
		t.Fatal("dispatch with missing input succeeded")
	}
}

func TestAnticipatoryReplicaMakesStagingFree(t *testing.T) {
	c := newCluster(t, 2)
	fs := vfs.New()
	for _, d := range c.daemons {
		d.cfg.FS = fs
	}
	if err := fs.Create("/data/in.dat", 1<<20, "archive"); err != nil {
		t.Fatal(err)
	}
	// Anticipatory replication to every candidate machine (§4.5).
	for _, d := range c.daemons {
		if _, err := fs.Replicate("/data/in.dat", d.MachineName()); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.registry.Register("/apps/warm.vce", func(ProgContext) error { return nil })
	task := taskgraph.Task{ID: "warm", Program: "/apps/warm.vce",
		InputFiles: []string{"/data/in.dat"}}
	e := c.execProgram(t)
	if _, err := e.Run(wsGraph(t, "app", task)); err != nil {
		t.Fatal(err)
	}
	var staged int64
	for _, d := range c.daemons {
		staged += d.StagedBytes()
	}
	if staged != 0 {
		t.Fatalf("staged bytes = %d, want 0 (replicas pre-placed)", staged)
	}
}
