package exm

import (
	"fmt"
	"sync"

	"vce/internal/channel"
)

// ProgContext is the environment a VCE program instance runs in.
type ProgContext struct {
	// App is the owning application name.
	App string
	// Task is the task ID within the application.
	Task string
	// Machine is the hosting machine's name.
	Machine string
	// Instance is the instance index (0-based).
	Instance int
	// Copy is the redundant-execution copy index (0 for the primary).
	Copy int
	// Hub provides VCE channels for inter-task communication.
	Hub *channel.Hub
	// Cancel closes when the runtime kills the instance; cooperative
	// programs select on it.
	Cancel <-chan struct{}
}

// Program is an executable VCE module. In the prototype, "applications are
// described at runtime in terms of object (rather than source) modules"; in
// this reproduction a module is an opaque Go function — the runtime manager
// ships, starts, monitors and kills it without knowing what it does.
type Program func(ctx ProgContext) error

// Registry maps program paths to implementations — the stand-in for the
// shared file system the prototype loaded object modules from.
type Registry struct {
	mu    sync.RWMutex
	progs map[string]Program
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{progs: make(map[string]Program)}
}

// Register installs a program under its path.
func (r *Registry) Register(path string, p Program) error {
	if path == "" || p == nil {
		return fmt.Errorf("exm: Register needs a path and a program")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.progs[path]; dup {
		return fmt.Errorf("exm: program %q already registered", path)
	}
	r.progs[path] = p
	return nil
}

// Lookup fetches a program.
func (r *Registry) Lookup(path string) (Program, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.progs[path]
	return p, ok
}

// Paths lists registered program paths.
func (r *Registry) Paths() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.progs))
	for p := range r.progs {
		out = append(out, p)
	}
	return out
}
