package exm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vce/internal/arch"
	"vce/internal/channel"
	"vce/internal/isis"
	"vce/internal/sched"
	"vce/internal/transport"
	"vce/internal/vfs"
)

// DaemonConfig configures one scheduling/dispatching daemon.
type DaemonConfig struct {
	// Machine describes the hosting hardware.
	Machine arch.Machine
	// Registry resolves program paths. Required.
	Registry *Registry
	// Hub carries application channels; daemons in one process share it
	// (the in-memory stand-in for the LAN the tasks talk over).
	Hub *channel.Hub
	// FS is the shared distributed file system; when set, the daemon
	// stages each instance's input files to this machine before launch
	// (and anticipatory replication pre-empts that cost, §4.5). Nil
	// disables staging.
	FS *vfs.FS
	// BaseLoad reports the machine's local (non-VCE) load; nil means 0.
	BaseLoad func() float64
	// MaxTasks bounds concurrent VCE instances; 0 means 4.
	MaxTasks int
	// OverloadThreshold is the load above which the daemon declines to
	// bid ("not already excessively loaded", §5). 0 means 2.0.
	OverloadThreshold float64
	// Isis tunes the underlying group process.
	Isis isis.Config
}

func (c DaemonConfig) withDefaults() DaemonConfig {
	if c.MaxTasks <= 0 {
		c.MaxTasks = 4
	}
	if c.OverloadThreshold <= 0 {
		c.OverloadThreshold = 2.0
	}
	if c.Hub == nil {
		c.Hub = channel.NewHub()
	}
	return c
}

// Daemon is the VCE daemon of §5: it "contributes to global scheduling and
// remote execution functions", bids for work, hosts instances, and serves as
// group leader when it is the oldest surviving member.
type Daemon struct {
	cfg  DaemonConfig
	proc *isis.Process

	mu      sync.Mutex
	running map[instanceKey]*instance

	// Counters for experiments.
	bidsSent    atomic.Int64
	execsServed atomic.Int64
	killsServed atomic.Int64
	stagedBytes atomic.Int64
}

// StagedBytes returns the input bytes this daemon has staged in for
// dispatched instances.
func (d *Daemon) StagedBytes() int64 { return d.stagedBytes.Load() }

type instanceKey struct {
	app      string
	task     string
	instance int
	copyIdx  int
}

type instance struct {
	cancel chan struct{}
	done   bool
}

// StartDaemon founds (contact == "") or joins a daemon group.
func StartDaemon(net transport.Network, group string, contact transport.Addr, cfg DaemonConfig) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil {
		return nil, fmt.Errorf("exm: daemon needs a program registry")
	}
	if cfg.Isis.Name == "" {
		cfg.Isis.Name = cfg.Machine.Name
	}
	d := &Daemon{cfg: cfg, running: make(map[instanceKey]*instance)}
	var proc *isis.Process
	var err error
	if contact == "" {
		proc, err = isis.Found(net, group, cfg.Isis)
	} else {
		proc, err = isis.Join(net, group, contact, cfg.Isis)
	}
	if err != nil {
		return nil, err
	}
	d.proc = proc
	proc.HandleCast(kindBidCast, d.onBidRequest)
	proc.HandleCast(kindKillCast, d.onKillCast)
	proc.HandlePoint(kindRequest, d.onRequest)
	proc.HandlePoint(kindExec, d.onExec)
	proc.HandlePoint(kindKill, d.onKill)
	proc.HandlePoint(kindAvailReq, d.onAvailReq)
	return d, nil
}

// Addr returns the daemon's transport address (its contact address).
func (d *Daemon) Addr() transport.Addr { return d.proc.Addr() }

// MachineName returns the hosting machine's name.
func (d *Daemon) MachineName() string { return d.cfg.Machine.Name }

// IsLeader reports whether this daemon currently leads its group.
func (d *Daemon) IsLeader() bool { return d.proc.IsLeader() }

// GroupSize returns the current group view size.
func (d *Daemon) GroupSize() int { return d.proc.View().Size() }

// Stop crashes the daemon (no goodbye), as in the failover experiments.
func (d *Daemon) Stop() {
	d.killAll()
	d.proc.Stop()
}

// Leave departs gracefully.
func (d *Daemon) Leave() {
	d.killAll()
	d.proc.Leave()
}

// Load returns the daemon's current load: local activity plus one unit per
// running VCE instance, normalized by machine speed.
func (d *Daemon) Load() float64 {
	base := 0.0
	if d.cfg.BaseLoad != nil {
		base = d.cfg.BaseLoad()
	}
	d.mu.Lock()
	n := len(d.running)
	d.mu.Unlock()
	speed := d.cfg.Machine.Speed
	if speed <= 0 {
		speed = 1
	}
	return base + float64(n)/speed
}

// RunningInstances returns the number of live instances.
func (d *Daemon) RunningInstances() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.running)
}

// BidsSent returns how many bids this daemon has submitted.
func (d *Daemon) BidsSent() int64 { return d.bidsSent.Load() }

// onBidRequest answers the leader's broadcast: "Any daemon that is not
// already excessively loaded and can run remote jobs sends its load
// description to the group leader."
func (d *Daemon) onBidRequest(_ isis.MemberID, payload []byte) ([]byte, bool) {
	var req bidReqMsg
	if decode(payload, &req) != nil {
		return nil, false
	}
	load := d.Load()
	d.mu.Lock()
	capacity := d.cfg.MaxTasks - len(d.running)
	d.mu.Unlock()
	if load >= d.cfg.OverloadThreshold || capacity <= 0 {
		return nil, false // decline: excessively loaded or full
	}
	bid, err := encode(bidMsg{Machine: d.cfg.Machine.Name, Load: load, Capacity: capacity})
	if err != nil {
		return nil, false
	}
	d.bidsSent.Add(1)
	return bid, true
}

// onRequest fields a resource request. Non-leaders forward to the leader
// (the §5 flow sends requests to the leader, but execution programs may only
// know one daemon's address — forwarding keeps the protocol robust across
// failovers).
func (d *Daemon) onRequest(from isis.MemberID, payload []byte) {
	var req requestMsg
	if decode(payload, &req) != nil {
		return
	}
	if !d.proc.IsLeader() {
		leader := d.proc.View().Leader()
		_ = d.proc.Send(leader.ID, kindRequest, payload)
		return
	}
	// The leader "fields this request and translates it into a broadcast
	// to all the scheduling/dispatching daemons to disclose their state."
	// Collection runs on its own goroutine: Isis builds "different
	// threads for each request", so concurrent execution programs do not
	// serialize.
	go d.lead(req)
}

func (d *Daemon) lead(req requestMsg) {
	cast, err := encode(bidReqMsg{App: req.App, Task: req.Task})
	reply := func(a allocMsg) {
		if body, err := encode(a); err == nil {
			_ = d.proc.Send(isis.MemberID(req.ReplyTo), kindAlloc, body)
		}
	}
	if err != nil {
		reply(allocMsg{ReqID: req.ReqID, App: req.App, Task: req.Task, Err: err.Error()})
		return
	}
	replies, castErr := d.proc.Cast(isis.FIFO, kindBidCast, cast, isis.AllReplies)
	// Timeout with partial replies is the normal path when some daemons
	// decline; only a hard failure (stopped process) aborts.
	if castErr != nil && castErr != isis.ErrTimeout {
		reply(allocMsg{ReqID: req.ReqID, App: req.App, Task: req.Task, Err: castErr.Error()})
		return
	}
	bids := make([]sched.Bid, 0, len(replies))
	addrByMachine := make(map[string]string, len(replies))
	for _, r := range replies {
		var b bidMsg
		if decode(r.Payload, &b) != nil {
			continue
		}
		bids = append(bids, sched.Bid{Machine: b.Machine, Load: b.Load, Capacity: b.Capacity})
		addrByMachine[b.Machine] = string(r.From)
	}
	names, ok := sched.SelectBest(bids, req.Need)
	if !ok {
		reply(allocMsg{
			ReqID: req.ReqID, App: req.App, Task: req.Task,
			Err: fmt.Sprintf("insufficient resources: need %d, %d available", req.Need, len(names)),
		})
		return
	}
	addrs := make([]string, len(names))
	for i, n := range names {
		addrs[i] = addrByMachine[n]
	}
	reply(allocMsg{ReqID: req.ReqID, App: req.App, Task: req.Task, Machines: addrs, Names: names})
}

// onExec starts one instance: load the module, run it, report completion.
func (d *Daemon) onExec(_ isis.MemberID, payload []byte) {
	var ex execMsg
	if decode(payload, &ex) != nil {
		return
	}
	d.execsServed.Add(1)
	key := instanceKey{app: ex.App, task: ex.Task, instance: ex.Instance, copyIdx: ex.Copy}
	report := func(errText string) {
		body, err := encode(doneMsg{
			App: ex.App, Task: ex.Task, Instance: ex.Instance, Copy: ex.Copy,
			Machine: d.cfg.Machine.Name, Err: errText,
		})
		if err == nil {
			_ = d.proc.Send(isis.MemberID(ex.ReplyTo), kindDone, body)
		}
	}
	prog, ok := d.cfg.Registry.Lookup(ex.Program)
	if !ok {
		report(fmt.Sprintf("no program %q on machine %s", ex.Program, d.cfg.Machine.Name))
		return
	}
	// Stage input files to this machine before launch. A replica placed
	// here earlier (anticipatory replication) makes this free.
	if d.cfg.FS != nil && len(ex.Files) > 0 {
		moved, err := d.cfg.FS.Stage(ex.Files, d.cfg.Machine.Name)
		if err != nil {
			report(fmt.Sprintf("staging inputs on %s: %v", d.cfg.Machine.Name, err))
			return
		}
		d.stagedBytes.Add(moved)
	}
	inst := &instance{cancel: make(chan struct{})}
	d.mu.Lock()
	if _, dup := d.running[key]; dup {
		d.mu.Unlock()
		report("duplicate instance")
		return
	}
	d.running[key] = inst
	d.mu.Unlock()

	go func() {
		err := prog(ProgContext{
			App: ex.App, Task: ex.Task, Machine: d.cfg.Machine.Name,
			Instance: ex.Instance, Copy: ex.Copy, Hub: d.cfg.Hub, Cancel: inst.cancel,
		})
		d.mu.Lock()
		killed := d.running[key] == nil || d.running[key].done
		delete(d.running, key)
		d.mu.Unlock()
		if killed {
			return // terminated by kill; no completion report
		}
		if err != nil {
			report(err.Error())
		} else {
			report("")
		}
	}()
}

// onKill handles a kill from outside the group (the execution program): it
// applies locally and relays to the whole group so every machine working on
// the application terminates it.
func (d *Daemon) onKill(_ isis.MemberID, payload []byte) {
	var k killMsg
	if decode(payload, &k) != nil {
		return
	}
	d.applyKill(k)
	_, _ = d.proc.Cast(isis.FIFO, kindKillCast, payload, 0)
}

// onKillCast applies a group-relayed kill.
func (d *Daemon) onKillCast(_ isis.MemberID, payload []byte) ([]byte, bool) {
	var k killMsg
	if decode(payload, &k) == nil {
		d.applyKill(k)
	}
	return nil, false
}

func (d *Daemon) applyKill(k killMsg) {
	d.killsServed.Add(1)
	d.mu.Lock()
	for key, inst := range d.running {
		if key.app != k.App {
			continue
		}
		if k.Task != "" && key.task != k.Task {
			continue
		}
		if k.Instance >= 0 && key.instance != k.Instance {
			continue
		}
		if !inst.done {
			inst.done = true
			close(inst.cancel)
		}
	}
	d.mu.Unlock()
}

func (d *Daemon) killAll() {
	d.mu.Lock()
	for _, inst := range d.running {
		if !inst.done {
			inst.done = true
			close(inst.cancel)
		}
	}
	d.mu.Unlock()
}

// onAvailReq answers script AVAIL() queries with the group view size.
func (d *Daemon) onAvailReq(_ isis.MemberID, payload []byte) {
	var req availReqMsg
	if decode(payload, &req) != nil {
		return
	}
	body, err := encode(availRepMsg{ReqID: req.ReqID, Count: d.proc.View().Size()})
	if err == nil {
		_ = d.proc.Send(isis.MemberID(req.ReplyTo), kindAvailRep, body)
	}
}
