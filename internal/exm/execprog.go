package exm

import (
	"fmt"
	"sync"
	"time"

	"vce/internal/arch"
	"vce/internal/channel"
	"vce/internal/isis"
	"vce/internal/taskgraph"
	"vce/internal/transport"
)

// ExecProgram is the §5 execution program: "an execution program that
// executes applications on behalf of a local user." It follows the paper's
// execute() pseudocode — request resources per directive, abort on
// allocation error, ship execution info, start, wait for termination, then
// broadcast terminate — generalized to task graphs with precedence arcs
// (dispatched in ready-set waves; a script without arcs is one wave, exactly
// the prototype).
type ExecProgram struct {
	client *isis.Client
	// Contacts maps machine classes to a known daemon address per group.
	contacts map[arch.Class]transport.Addr
	// LocalRegistry runs LOCAL tasks on the user's workstation.
	localRegistry *Registry
	hub           *channel.Hub
	timeout       time.Duration

	mu      sync.Mutex
	reqSeq  uint64
	allocCh map[uint64]chan allocMsg
	availCh map[uint64]chan int
	doneCh  chan doneMsg
}

// ExecConfig configures an execution program.
type ExecConfig struct {
	// Name labels the user's endpoint.
	Name string
	// Contacts gives one known daemon address per machine class group.
	Contacts map[arch.Class]transport.Addr
	// LocalRegistry resolves LOCAL task programs; may equal the shared
	// registry.
	LocalRegistry *Registry
	// Hub carries application channels for local tasks.
	Hub *channel.Hub
	// Timeout bounds each allocation and each wave of executions
	// (default 30s).
	Timeout time.Duration
}

// NewExecProgram creates the user-side endpoint.
func NewExecProgram(net transport.Network, cfg ExecConfig) (*ExecProgram, error) {
	if cfg.Name == "" {
		cfg.Name = "execprog"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Hub == nil {
		cfg.Hub = channel.NewHub()
	}
	client, err := isis.NewClient(net, cfg.Name)
	if err != nil {
		return nil, err
	}
	e := &ExecProgram{
		client:        client,
		contacts:      cfg.Contacts,
		localRegistry: cfg.LocalRegistry,
		hub:           cfg.Hub,
		timeout:       cfg.Timeout,
		allocCh:       make(map[uint64]chan allocMsg),
		availCh:       make(map[uint64]chan int),
		doneCh:        make(chan doneMsg, 1024),
	}
	client.HandlePoint(kindAlloc, e.onAlloc)
	client.HandlePoint(kindDone, e.onDone)
	client.HandlePoint(kindAvailRep, e.onAvailRep)
	return e, nil
}

// Close releases the endpoint.
func (e *ExecProgram) Close() { e.client.Close() }

func (e *ExecProgram) onAlloc(_ isis.MemberID, payload []byte) {
	var a allocMsg
	if decode(payload, &a) != nil {
		return
	}
	e.mu.Lock()
	ch := e.allocCh[a.ReqID]
	e.mu.Unlock()
	if ch != nil {
		ch <- a
	}
}

func (e *ExecProgram) onDone(_ isis.MemberID, payload []byte) {
	var d doneMsg
	if decode(payload, &d) == nil {
		e.doneCh <- d
	}
}

func (e *ExecProgram) onAvailRep(_ isis.MemberID, payload []byte) {
	var r availRepMsg
	if decode(payload, &r) != nil {
		return
	}
	e.mu.Lock()
	ch := e.availCh[r.ReqID]
	e.mu.Unlock()
	if ch != nil {
		ch <- r.Count
	}
}

// Avail queries a group's current size, implementing script.Env for
// conditional application descriptions.
func (e *ExecProgram) Avail(group string) int {
	class, ok := arch.GroupKeywords()[group]
	if !ok {
		return 0
	}
	contact, ok := e.contacts[class]
	if !ok {
		return 0
	}
	e.mu.Lock()
	e.reqSeq++
	id := e.reqSeq
	ch := make(chan int, 1)
	e.availCh[id] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.availCh, id)
		e.mu.Unlock()
	}()
	body, err := encode(availReqMsg{ReqID: id, ReplyTo: string(e.client.Addr())})
	if err != nil {
		return 0
	}
	if err := e.client.Send(contact, kindAvailReq, body); err != nil {
		return 0
	}
	select {
	case n := <-ch:
		return n
	case <-time.After(e.timeout):
		return 0
	}
}

// Placement records where one task instance ran.
type Placement struct {
	// Task and Instance identify the placed work; Copy > 0 marks a
	// redundant copy.
	Task     taskgraph.TaskID
	Instance int
	Copy     int
	// Machine is the executing machine's name ("local" for LOCAL tasks).
	Machine string
	// Err is the instance's failure, if any.
	Err string
	// Elapsed is the wall time from dispatch to completion.
	Elapsed time.Duration
}

// RunReport summarizes one application execution.
type RunReport struct {
	// App is the application name.
	App string
	// Placements lists every instance execution.
	Placements []Placement
	// Waves is the number of dispatch rounds (1 for arc-free scripts).
	Waves int
	// Elapsed is total wall time.
	Elapsed time.Duration
}

// MachinesUsed returns the distinct machine names that hosted instances.
func (r *RunReport) MachinesUsed() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.Placements {
		if !seen[p.Machine] {
			seen[p.Machine] = true
			out = append(out, p.Machine)
		}
	}
	return out
}

// Run executes an application described by an annotated task graph.
func (e *ExecProgram) Run(g *taskgraph.Graph) (*RunReport, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	report := &RunReport{App: g.Name}
	done := make(map[taskgraph.TaskID]bool)
	started := make(map[taskgraph.TaskID]bool)
	for g.Len() > len(done) {
		ready := g.Ready(done, started)
		if len(ready) == 0 {
			return report, fmt.Errorf("exm: no dispatchable tasks with %d/%d complete", len(done), g.Len())
		}
		report.Waves++
		placements, err := e.runWave(g, ready)
		report.Placements = append(report.Placements, placements...)
		if err != nil {
			e.terminate(g.Name)
			return report, err
		}
		for _, id := range ready {
			done[id] = true
		}
	}
	e.terminate(g.Name)
	report.Elapsed = time.Since(start)
	return report, nil
}

// pendingInstance tracks one dispatched instance awaiting completion.
type pendingInstance struct {
	task      taskgraph.TaskID
	instance  int
	copies    int
	retries   int
	nextCopy  int
	completed bool
}

// runWave allocates, dispatches and awaits one ready set.
func (e *ExecProgram) runWave(g *taskgraph.Graph, ready []taskgraph.TaskID) ([]Placement, error) {
	type dispatch struct {
		task  taskgraph.Task
		addrs []string
		names []string
	}
	var remote []dispatch
	var local []taskgraph.Task

	// Phase 1: resource requests, one per remote task (§5: read line,
	// send request, receive reply, abort on AllocError).
	for _, id := range ready {
		task, _ := g.Task(id)
		if task.Local {
			local = append(local, task)
			continue
		}
		copies := 1
		if task.Hint.Redundant > 1 {
			copies = task.Hint.Redundant
		}
		need := task.Instances() * copies
		alloc, err := e.requestMachines(g.Name, task, need)
		if err != nil {
			return nil, fmt.Errorf("exm: allocating %q: %w", id, err)
		}
		remote = append(remote, dispatch{task: task, addrs: alloc.Machines, names: alloc.Names})
	}

	// Phase 2: ship execution info and start everything.
	waveStart := time.Now()
	expected := make(map[instanceKey]*pendingInstance)
	taskByName := make(map[string]taskgraph.Task, len(remote))
	var placements []Placement
	for _, disp := range remote {
		taskByName[string(disp.task.ID)] = disp.task
		copies := 1
		if disp.task.Hint.Redundant > 1 {
			copies = disp.task.Hint.Redundant
		}
		n := disp.task.Instances()
		slot := 0
		for inst := 0; inst < n; inst++ {
			expected[instanceKey{app: g.Name, task: string(disp.task.ID), instance: inst}] = &pendingInstance{
				task: disp.task.ID, instance: inst, copies: copies,
				retries: disp.task.Hint.Retries, nextCopy: copies - 1,
			}
			for c := 0; c < copies; c++ {
				body, err := encode(execMsg{
					App: g.Name, Task: string(disp.task.ID), Program: disp.task.Program,
					Instance: inst, Copy: c, Files: disp.task.InputFiles,
					ReplyTo: string(e.client.Addr()),
				})
				if err != nil {
					return placements, err
				}
				addr := disp.addrs[slot%len(disp.addrs)]
				slot++
				if err := e.client.Send(transport.Addr(addr), kindExec, body); err != nil {
					return placements, fmt.Errorf("exm: dispatching %s[%d]: %w", disp.task.ID, inst, err)
				}
			}
		}
	}

	// Local tasks run on the user's workstation, "after the remote
	// executions have begun" (§5).
	localErr := make(chan Placement, len(local))
	for _, task := range local {
		task := task
		go func() {
			p := Placement{Task: task.ID, Machine: "local"}
			t0 := time.Now()
			if e.localRegistry == nil {
				p.Err = "no local registry"
			} else if prog, ok := e.localRegistry.Lookup(task.Program); !ok {
				p.Err = fmt.Sprintf("no local program %q", task.Program)
			} else if err := prog(ProgContext{App: g.Name, Task: string(task.ID), Machine: "local", Hub: e.hub, Cancel: make(chan struct{})}); err != nil {
				p.Err = err.Error()
			}
			p.Elapsed = time.Since(t0)
			localErr <- p
		}()
	}

	// Phase 3: wait for termination of the wave.
	needed := len(expected)
	deadline := time.After(e.timeout)
	for completedCount := 0; completedCount < needed; {
		select {
		case d := <-e.doneCh:
			if d.App != g.Name {
				continue
			}
			key := instanceKey{app: d.App, task: d.Task, instance: d.Instance}
			pi, ok := expected[key]
			if !ok {
				continue
			}
			if d.Err != "" {
				// A failed copy only fails the instance when no
				// redundant copy remains.
				pi.copies--
				if pi.copies > 0 || pi.completed {
					continue
				}
				// Retry-based fault tolerance (§3.1.2, ONFAIL):
				// re-request a machine and dispatch a fresh copy.
				if pi.retries > 0 {
					pi.retries--
					if e.redisatchInstance(g.Name, taskByName[d.Task], pi) {
						continue
					}
				}
				placements = append(placements, Placement{
					Task: pi.task, Instance: d.Instance, Copy: d.Copy,
					Machine: d.Machine, Err: d.Err, Elapsed: time.Since(waveStart),
				})
				return placements, fmt.Errorf("exm: task %s[%d] failed on %s: %s", d.Task, d.Instance, d.Machine, d.Err)
			}
			if pi.completed {
				continue // a slower redundant copy; ignore
			}
			pi.completed = true
			completedCount++
			placements = append(placements, Placement{
				Task: pi.task, Instance: d.Instance, Copy: d.Copy,
				Machine: d.Machine, Elapsed: time.Since(waveStart),
			})
			if pi.copies > 1 {
				// First copy wins: kill the redundant ones
				// ("kill the incarnation of the redundant task",
				// §4.4).
				e.killTask(g.Name, d.Task, d.Instance)
			}
		case <-deadline:
			return placements, fmt.Errorf("exm: wave timed out: %d/%d instances complete", completedCount, needed)
		}
	}
	for range local {
		p := <-localErr
		placements = append(placements, p)
		if p.Err != "" {
			return placements, fmt.Errorf("exm: local task %s: %s", p.Task, p.Err)
		}
	}
	return placements, nil
}

// redisatchInstance re-runs a failed instance on a freshly allocated
// machine; it reports whether the retry was dispatched.
func (e *ExecProgram) redisatchInstance(app string, task taskgraph.Task, pi *pendingInstance) bool {
	if task.ID == "" {
		return false
	}
	alloc, err := e.requestMachines(app, task, 1)
	if err != nil || len(alloc.Machines) == 0 {
		return false
	}
	pi.nextCopy++
	body, err := encode(execMsg{
		App: app, Task: string(task.ID), Program: task.Program,
		Instance: pi.instance, Copy: pi.nextCopy, Files: task.InputFiles,
		ReplyTo: string(e.client.Addr()),
	})
	if err != nil {
		return false
	}
	if e.client.Send(transport.Addr(alloc.Machines[0]), kindExec, body) != nil {
		return false
	}
	pi.copies++
	return true
}

// requestMachines performs the Figure 3 request/reply with a group leader.
func (e *ExecProgram) requestMachines(app string, task taskgraph.Task, need int) (allocMsg, error) {
	if len(task.Requirements.Classes) == 0 {
		return allocMsg{}, fmt.Errorf("task %q has no machine classes", task.ID)
	}
	var contact transport.Addr
	var found bool
	for _, class := range task.Requirements.Classes {
		if c, ok := e.contacts[class]; ok {
			contact, found = c, true
			break
		}
	}
	if !found {
		return allocMsg{}, fmt.Errorf("no group contact for classes %v", task.Requirements.Classes)
	}
	e.mu.Lock()
	e.reqSeq++
	id := e.reqSeq
	ch := make(chan allocMsg, 1)
	e.allocCh[id] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.allocCh, id)
		e.mu.Unlock()
	}()
	body, err := encode(requestMsg{
		ReqID: id, App: app, Task: string(task.ID), Program: task.Program,
		Need: need, ReplyTo: string(e.client.Addr()),
	})
	if err != nil {
		return allocMsg{}, err
	}
	if err := e.client.Send(contact, kindRequest, body); err != nil {
		return allocMsg{}, fmt.Errorf("request to %s: %w", contact, err)
	}
	select {
	case a := <-ch:
		if a.Err != "" {
			return a, fmt.Errorf("%s", a.Err)
		}
		if len(a.Machines) < need {
			return a, fmt.Errorf("allocation returned %d machines, need %d", len(a.Machines), need)
		}
		return a, nil
	case <-time.After(e.timeout):
		return allocMsg{}, fmt.Errorf("allocation request timed out")
	}
}

// terminate broadcasts the app's termination to every known group contact —
// "the execution program notifies all machines working on the application to
// terminate" (§5).
func (e *ExecProgram) terminate(app string) {
	body, err := encode(killMsg{App: app, Instance: -1})
	if err != nil {
		return
	}
	for _, contact := range e.contacts {
		_ = e.client.Send(contact, kindKill, body)
	}
}

// killTask terminates one instance's redundant copies everywhere.
func (e *ExecProgram) killTask(app, task string, instance int) {
	body, err := encode(killMsg{App: app, Task: task, Instance: instance})
	if err != nil {
		return
	}
	for _, contact := range e.contacts {
		_ = e.client.Send(contact, kindKill, body)
	}
}
