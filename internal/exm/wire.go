// Package exm implements the Execution Module's runtime manager (§3.1.2,
// §5): the scheduling/dispatching daemon that runs on every machine, the
// group-leader bidding protocol of Figure 3, and the execution program that
// runs applications on behalf of a user.
//
// The protocol follows the paper's pseudocode: the execution program sends a
// resource request to a group leader; the leader broadcasts it to the group;
// "each machine, based on current load and availability, sends a 'bid' back
// to the group leader"; the leader sorts bids by load and returns the best
// processors or an allocation failure; the execution program then ships
// execution information to the selected daemons and awaits termination.
package exm

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Point-to-point and cast message kinds.
const (
	kindRequest  = "exm.request"   // exec program -> leader (or any daemon, forwarded)
	kindBidCast  = "exm.bids"      // leader -> group (cast, replies are bids)
	kindAlloc    = "exm.alloc"     // leader -> exec program
	kindExec     = "exm.exec"      // exec program -> selected daemon
	kindDone     = "exm.done"      // daemon -> exec program
	kindKill     = "exm.kill"      // exec program -> daemon (relayed to group)
	kindKillCast = "exm.kill_cast" // daemon -> group (cast)
	kindAvailReq = "exm.avail_req" // script Env -> any daemon
	kindAvailRep = "exm.avail_rep" // daemon -> script Env
)

// requestMsg asks a group for machines.
type requestMsg struct {
	ReqID   uint64
	App     string
	Task    string
	Program string
	Need    int
	ReplyTo string // exec program address
}

// bidReqMsg is the leader's broadcast to the group.
type bidReqMsg struct {
	App  string
	Task string
}

// bidMsg is one daemon's load description.
type bidMsg struct {
	Machine  string
	Load     float64
	Capacity int
}

// allocMsg answers a requestMsg.
type allocMsg struct {
	ReqID    uint64
	App      string
	Task     string
	Machines []string // daemon addresses, best (least loaded) first
	Names    []string // machine names aligned with Machines
	Err      string
}

// execMsg ships one task instance to a daemon.
type execMsg struct {
	App      string
	Task     string
	Program  string
	Instance int
	Copy     int
	Files    []string
	ReplyTo  string
}

// doneMsg reports instance completion.
type doneMsg struct {
	App      string
	Task     string
	Instance int
	Copy     int
	Machine  string
	Err      string
}

// killMsg terminates an application's instances. Task empty means every task
// of the app; Instance < 0 means every instance of the task. A daemon
// receiving a kill from outside the group relays it as a group cast so that
// "all machines working on the application" learn of the termination (§5).
type killMsg struct {
	App      string
	Task     string
	Instance int
}

// availReqMsg queries group availability (script AVAIL()).
type availReqMsg struct {
	ReqID   uint64
	ReplyTo string
}

// availRepMsg answers an availability query.
type availRepMsg struct {
	ReqID uint64
	Count int
}

func encode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("exm: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decode(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("exm: decode: %w", err)
	}
	return nil
}
