package exm

import (
	"testing"
	"testing/quick"
)

func TestWireRoundTrips(t *testing.T) {
	req := requestMsg{ReqID: 7, App: "snow", Task: "predictor", Program: "/p.vce", Need: 3, ReplyTo: "addr"}
	data, err := encode(req)
	if err != nil {
		t.Fatal(err)
	}
	var got requestMsg
	if err := decode(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip: %+v vs %+v", got, req)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	var msg allocMsg
	if err := decode([]byte("not gob"), &msg); err == nil {
		t.Fatal("garbage decoded")
	}
	if err := decode(nil, &msg); err == nil {
		t.Fatal("empty payload decoded")
	}
}

func TestWirePropertyExecMsg(t *testing.T) {
	f := func(app, task, prog string, inst, copyIdx uint8, files []string) bool {
		in := execMsg{App: app, Task: task, Program: prog,
			Instance: int(inst), Copy: int(copyIdx), Files: files, ReplyTo: "r"}
		data, err := encode(in)
		if err != nil {
			return false
		}
		var out execMsg
		if err := decode(data, &out); err != nil {
			return false
		}
		if out.App != in.App || out.Task != in.Task || out.Instance != in.Instance || out.Copy != in.Copy {
			return false
		}
		if len(out.Files) != len(in.Files) {
			return false
		}
		for i := range in.Files {
			if out.Files[i] != in.Files[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoneAndKillRoundTrip(t *testing.T) {
	d := doneMsg{App: "a", Task: "t", Instance: 2, Copy: 1, Machine: "m", Err: "boom"}
	data, _ := encode(d)
	var gotD doneMsg
	if err := decode(data, &gotD); err != nil || gotD != d {
		t.Fatalf("done round trip: %+v %v", gotD, err)
	}
	k := killMsg{App: "a", Task: "t", Instance: -1}
	data, _ = encode(k)
	var gotK killMsg
	if err := decode(data, &gotK); err != nil || gotK != k {
		t.Fatalf("kill round trip: %+v %v", gotK, err)
	}
}
