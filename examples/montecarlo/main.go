// Montecarlo: free parallelism (§4.5) on a bag-of-tasks Monte Carlo π
// estimation — the classic "easily migrated, embarrassingly parallel"
// workload of the load-balancing literature the paper cites (Spawn,
// Condor-style batch jobs). Eight workers run wherever the bidding protocol
// finds idle workstations; a LOCAL reducer aggregates their counts over a
// VCE channel.
package main

import (
	"fmt"
	"log"
	"time"

	"vce"
	"vce/internal/channel"
	"vce/internal/rng"
)

const (
	workers          = 8
	samplesPerWorker = 200_000
)

func main() {
	env := vce.New(vce.Options{})
	defer env.Shutdown()

	for i := 0; i < workers; i++ {
		m := vce.Machine{Name: fmt.Sprintf("ws%02d", i), Class: vce.Workstation, Speed: 1, OS: "unix"}
		if _, err := env.AddMachine(m, vce.MachineConfig{MaxTasks: 2}); err != nil {
			log.Fatal(err)
		}
	}

	// Worker: sample the unit square, count hits inside the quarter
	// circle, report the count to the reducer.
	err := env.Registry().Register("/apps/mc/worker.vce", func(ctx vce.ProgContext) error {
		r := rng.New(uint64(ctx.Instance) + 1).Derive("pi")
		hits := 0
		for i := 0; i < samplesPerWorker; i++ {
			x, y := r.Float64(), r.Float64()
			if x*x+y*y < 1 {
				hits++
			}
		}
		ch := ctx.Hub.Channel("results")
		port, err := ch.CreatePort(channel.PortID(fmt.Sprintf("worker-%d", ctx.Instance)))
		if err != nil {
			return err
		}
		// Wait for the reducer's port, then report.
		for i := 0; i < 5000; i++ {
			if err := port.SendTo("reducer", []byte(fmt.Sprintf("%d", hits))); err == nil {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("reducer never appeared")
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reducer: runs LOCAL, collects one count per worker.
	err = env.Registry().Register("/apps/mc/reduce.vce", func(ctx vce.ProgContext) error {
		port, err := ctx.Hub.Channel("results").CreatePort("reducer")
		if err != nil {
			return err
		}
		total := 0
		for i := 0; i < workers; i++ {
			m, ok := port.Recv()
			if !ok {
				return fmt.Errorf("results channel closed early")
			}
			var hits int
			if _, err := fmt.Sscanf(string(m.Payload), "%d", &hits); err != nil {
				return err
			}
			total += hits
		}
		pi := 4 * float64(total) / float64(workers*samplesPerWorker)
		fmt.Printf("π ≈ %.5f from %d samples across %d workers\n",
			pi, workers*samplesPerWorker, workers)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	src := fmt.Sprintf(`WORKSTATION %d "/apps/mc/worker.vce"
LOCAL "/apps/mc/reduce.vce"
COMM "/apps/mc/worker.vce" -> "/apps/mc/reduce.vce" CHANNEL results`, workers)
	report, err := env.RunScript("montecarlo", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workers spread over %d machines — speed-up on idle workstations comes \"for free\" (§4.5)\n",
		len(report.MachinesUsed())-1)
}
