// Mpipi: the MPI library the paper promises for the coding level (§3.1.1:
// communication "via standard communication libraries (based on standards
// such as MPI)") running an SPMD π integration over a live VCE. Four
// instances of one program are dispatched by the bidding protocol; each
// joins an MPI communicator as the rank matching its instance number,
// integrates a slice of 4/(1+x²), and AllReduce sums the slices.
package main

import (
	"fmt"
	"log"
	"time"

	"vce"
	"vce/internal/mpi"
)

const (
	ranks = 4
	steps = 1_000_000
)

func main() {
	env := vce.New(vce.Options{})
	defer env.Shutdown()
	for i := 0; i < ranks; i++ {
		m := vce.Machine{Name: fmt.Sprintf("node%d", i), Class: vce.Workstation, Speed: 1, OS: "unix"}
		if _, err := env.AddMachine(m, vce.MachineConfig{}); err != nil {
			log.Fatal(err)
		}
	}

	// One communicator shared by every instance of the SPMD program.
	world, err := mpi.NewWorld(env.Hub(), "pi", ranks)
	if err != nil {
		log.Fatal(err)
	}

	err = env.Registry().Register("/apps/pi.vce", func(ctx vce.ProgContext) error {
		comm, err := world.Join(ctx.Instance)
		if err != nil {
			return err
		}
		defer comm.Close()
		// MPI_Init rendezvous: collectives need the full communicator.
		if err := comm.WaitPeers(10 * time.Second); err != nil {
			return err
		}
		// Classic MPI pi: strided midpoint integration of 4/(1+x^2).
		h := 1.0 / steps
		local := 0.0
		for i := comm.Rank(); i < steps; i += comm.Size() {
			x := h * (float64(i) + 0.5)
			local += 4.0 / (1.0 + x*x) * h
		}
		pi, err := comm.AllReduce(mpi.Sum, local)
		if err != nil {
			return err
		}
		if comm.Rank() == 0 {
			fmt.Printf("rank 0 on %s: π ≈ %.9f (%d ranks × %d strided steps)\n",
				ctx.Machine, pi, comm.Size(), steps/comm.Size())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := env.RunScript("mpipi", fmt.Sprintf(`WORKSTATION %d "/apps/pi.vce"`, ranks))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPMD ranks placed on: %v\n", report.MachinesUsed())
}
