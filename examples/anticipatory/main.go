// Anticipatory: the §4.5 two-module example. While the first module runs,
// idle machines precompile the second module for every candidate
// architecture and replicate its input files to candidate hosts — so when
// the first module completes, the second dispatches instantly.
package main

import (
	"fmt"
	"log"
	"time"

	"vce/internal/antic"
	"vce/internal/arch"
	"vce/internal/compilemgr"
	"vce/internal/metrics"
	"vce/internal/netsim"
	"vce/internal/sim"
	"vce/internal/taskgraph"
)

func main() {
	table := metrics.NewTable("§4.5 anticipatory processing (stage 1 runs 120s; stage 2: 60s compile + 32 MiB input)",
		"mode", "stage-2 dispatch latency s", "application makespan s")
	for _, anticipate := range []bool{false, true} {
		lat, makespan := run(anticipate)
		mode := "cold"
		if anticipate {
			mode = "anticipatory"
		}
		table.AddRow(mode, lat.Seconds(), makespan.Seconds())
	}
	fmt.Println(table.String())
	fmt.Println(`Anticipatory compilation and file replication fit entirely inside the
first module's execution shadow, so the dependent module starts the moment
its predecessor finishes — idle cycles bought the latency down to zero.`)
}

func run(anticipate bool) (time.Duration, time.Duration) {
	fail := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	host := arch.Machine{Name: "host", Class: arch.Workstation, Speed: 1, OS: "unix", MemoryMB: 64}
	builder := arch.Machine{Name: "builder", Class: arch.Workstation, Speed: 1, OS: "unix", MemoryMB: 64}
	db := arch.NewDB()
	fail(db.Add(host))
	fail(db.Add(builder))
	mgr := compilemgr.New(db, compilemgr.CostModel{Base: 60 * time.Second})

	c := sim.NewCluster()
	c.Net = netsim.New(netsim.Link{Latency: 0, Bandwidth: 1 << 20}) // 1 MiB/s
	hostM, err := c.AddMachine(host)
	fail(err)
	builderM, err := c.AddMachine(builder)
	fail(err)
	fail(c.FS.Create("/data/obs.dat", 32<<20, "archive"))

	g := taskgraph.New("two-stage")
	fail(g.AddTask(taskgraph.Task{ID: "first", Program: "/apps/first.vce", WorkUnits: 120,
		Requirements: arch.Requirements{Classes: []arch.Class{arch.Workstation}}}))
	second := taskgraph.Task{ID: "second", Program: "/apps/second.vce", WorkUnits: 60,
		ImageBytes: 4 << 20, InputFiles: []string{"/data/obs.dat"},
		Requirements: arch.Requirements{Classes: []arch.Class{arch.Workstation}}}
	fail(g.AddTask(second))
	fail(g.AddArc(taskgraph.Arc{From: "first", To: "second", Kind: taskgraph.Precedence}))

	done := map[taskgraph.TaskID]bool{}
	started := map[taskgraph.TaskID]bool{"first": true}
	if anticipate {
		for _, plan := range antic.CompilationPlans(mgr, g, done, started) {
			_, err := antic.ExecuteCompile(c, mgr, g, plan, builderM)
			fail(err)
		}
		plans, err := antic.ReplicationPlans(c.FS, g, done, started,
			map[taskgraph.TaskID][]string{"second": {"host"}})
		fail(err)
		for _, p := range plans {
			fail(antic.ExecuteReplicate(c, c.FS, p))
		}
	}

	var dispatchLatency, makespan time.Duration
	fail(hostM.AddTask(&sim.Task{ID: "first", Work: 120,
		OnDone: func(_ *sim.Task, at time.Duration) {
			var lat time.Duration
			if !mgr.HasBinaryFor("/apps/second.vce", host) {
				lat += mgr.CostModel().CompileTime(second.ImageBytes)
			}
			if stageIn, err := antic.StageInLatency(c, c.FS, second, "host"); err == nil {
				lat += stageIn
			}
			dispatchLatency = lat
			c.Sim.After(lat, func() {
				fail(hostM.AddTask(&sim.Task{ID: "second", Work: 60,
					OnDone: func(_ *sim.Task, at2 time.Duration) { makespan = at2 }}))
			})
		}}))
	c.Sim.Run()
	return dispatchLatency, makespan
}
