// Migration: the four §4.4 process-migration strategies compared on the
// discrete-event cluster. A 16 MiB task is interrupted mid-run; each
// strategy moves it and reports what the move cost.
package main

import (
	"fmt"
	"log"
	"time"

	"vce/internal/arch"
	"vce/internal/compilemgr"
	"vce/internal/metrics"
	"vce/internal/migrate"
	"vce/internal/netsim"
	"vce/internal/sim"
)

func ws(name string) arch.Machine {
	return arch.Machine{Name: name, Class: arch.Workstation, Speed: 1, OS: "unix", Order: arch.BigEndian}
}

func cluster() (*sim.Cluster, *sim.Machine, *sim.Machine) {
	c := sim.NewCluster()
	c.Net = netsim.New(netsim.Link{Latency: time.Millisecond, Bandwidth: 1.25e6}) // 10 Mb/s LAN
	src, _ := c.AddMachine(ws("src"))
	dst, _ := c.AddMachine(ws("dst"))
	return c, src, dst
}

func main() {
	const work = 100.0
	const image = 16 << 20
	migrateAt := 25 * time.Second

	table := metrics.NewTable("§4.4 migration strategies (16 MiB image, interrupted at t=25s)",
		"strategy", "bytes moved MiB", "downtime s", "lost work", "task completed at")

	// Redundant execution: a second copy was dispatched up front; the
	// migration is just killing the interrupted copy.
	{
		c, src, dst := cluster()
		red := migrate.NewRedundant()
		var doneAt time.Duration
		_, err := red.Launch(c, "job", work, image, []*sim.Machine{src, dst},
			func(at time.Duration) { doneAt = at })
		if err != nil {
			log.Fatal(err)
		}
		var res migrate.Result
		c.Sim.At(migrateAt, func() {
			var err error
			res, err = red.Evict(c, "job", "src")
			if err != nil {
				log.Fatal(err)
			}
		})
		c.Sim.Run()
		table.AddRow("redundant", float64(res.BytesMoved)/(1<<20), res.Downtime.Seconds(), res.LostWork, doneAt.Seconds())
	}

	// The three kill-and-restart strategies share a harness.
	run := func(name string, strategy migrate.Strategy, attach func(*sim.Cluster, *sim.Task) error) {
		c, src, dst := cluster()
		var doneAt time.Duration
		task := &sim.Task{ID: "job", Work: work, ImageBytes: image, Checkpointable: true,
			OnDone: func(_ *sim.Task, at time.Duration) { doneAt = at }}
		if err := src.AddTask(task); err != nil {
			log.Fatal(err)
		}
		if attach != nil {
			if err := attach(c, task); err != nil {
				log.Fatal(err)
			}
		}
		var res migrate.Result
		c.Sim.At(migrateAt, func() {
			var err error
			res, err = strategy.Migrate(c, task, src, dst)
			if err != nil {
				log.Fatal(err)
			}
		})
		c.Sim.Run()
		table.AddRow(name, float64(res.BytesMoved)/(1<<20), res.Downtime.Seconds(), res.LostWork, doneAt.Seconds())
	}

	run("address-space", migrate.AddressSpace{}, nil)

	ck := migrate.NewCheckpointer(10 * time.Second)
	run("checkpoint (10s)", ck, func(c *sim.Cluster, t *sim.Task) error { return ck.Attach(c, t) })

	run("recompile (cold)", &migrate.Recompile{
		Cost: compilemgr.CostModel{Base: 60 * time.Second, PerMiB: time.Second},
	}, nil)

	fmt.Println(table.String())
	fmt.Println(`The paper's repertoire argument (§4.4): redundant execution migrates for
free but burns duplicate cycles; the address-space copy is cheap but
"requires homogeneity"; checkpointing re-does work since the last record;
recompilation alone crosses architectures, at the price of a compile.`)
}
