// Failover: the §5 fault-tolerance rule, live. A five-workstation group
// forms; the group leader is killed mid-service; "the oldest surviving
// member of the group ... assume[s] the role of group leader", and
// applications submitted afterwards keep being served.
package main

import (
	"fmt"
	"log"
	"time"

	"vce"
)

func main() {
	env := vce.New(vce.Options{
		Isis: vce.IsisConfig{
			HeartbeatEvery: 50 * time.Millisecond,
			FailAfter:      500 * time.Millisecond,
			ReplyTimeout:   time.Second,
		},
	})
	defer env.Shutdown()

	const n = 5
	for i := 0; i < n; i++ {
		m := vce.Machine{Name: fmt.Sprintf("ws%d", i), Class: vce.Workstation, Speed: 1, OS: "unix"}
		if _, err := env.AddMachine(m, vce.MachineConfig{}); err != nil {
			log.Fatal(err)
		}
	}
	if err := env.Registry().Register("/apps/job.vce", func(ctx vce.ProgContext) error {
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	leaderName := func() string {
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("ws%d", i)
			if d, ok := env.Daemon(name); ok && d.IsLeader() {
				return name
			}
		}
		return "?"
	}
	waitGroup := func(size int) {
		for env.GroupSizes()[vce.Workstation] != size {
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitGroup(n)
	fmt.Printf("group formed: %d members, leader %s\n", n, leaderName())

	if _, err := env.RunScript("before", `WORKSTATION 2 "/apps/job.vce"`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("application served before failure")

	victim := leaderName()
	fmt.Printf("killing group leader %s (no goodbye) ...\n", victim)
	start := time.Now()
	if err := env.StopMachine(victim); err != nil {
		log.Fatal(err)
	}
	// Wait for the oldest surviving member to take over.
	for {
		if l := leaderName(); l != "?" && l != victim {
			fmt.Printf("oldest surviving member %s assumed leadership after %v\n",
				l, time.Since(start).Round(time.Millisecond))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	report, err := env.RunScript("after", `WORKSTATION 2 "/apps/job.vce"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application served after failover on %v — the group never stopped taking work\n",
		report.MachinesUsed())
}
