// Weather: the §5 weather-forecasting application, end to end. Two data
// collectors run on the MIMD group, a user-input collector on a
// workstation, the predictor on the SIMD machine, and the display on the
// user's own workstation (LOCAL) — all communicating over VCE channels, with
// the script's conditional vocabulary choosing the predictor's home.
package main

import (
	"fmt"
	"log"
	"time"

	"vce"
	"vce/internal/channel"
)

// waitForPeers blocks until the channel has at least n connected ports (the
// 1994 equivalent: tasks rendezvous on their assigned channels at startup).
func waitForPeers(ch *channel.Channel, n int) {
	for i := 0; i < 5000; i++ {
		if len(ch.Ports()) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func main() {
	env := vce.New(vce.Options{})
	defer env.Shutdown()

	// A heterogeneous network: MIMD group, SIMD group, workstation group.
	machines := []vce.Machine{
		{Name: "mimd0", Class: vce.MIMD, Speed: 10, OS: "unix"},
		{Name: "mimd1", Class: vce.MIMD, Speed: 10, OS: "unix"},
		{Name: "cm5", Class: vce.SIMD, Speed: 40, OS: "cmost"},
		{Name: "ws0", Class: vce.Workstation, Speed: 1, OS: "unix"},
		{Name: "ws1", Class: vce.Workstation, Speed: 1, OS: "unix"},
	}
	for _, m := range machines {
		if _, err := env.AddMachine(m, vce.MachineConfig{}); err != nil {
			log.Fatal(err)
		}
	}

	reg := env.Registry()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Collectors: each pushes five observations onto the "obs" channel.
	must(reg.Register("/apps/snow/collector.vce", func(ctx vce.ProgContext) error {
		ch := ctx.Hub.Channel("obs")
		port, err := ch.CreatePort(channel.PortID(fmt.Sprintf("collector-%d", ctx.Instance)))
		if err != nil {
			return err
		}
		waitForPeers(ch, 3) // both collectors + predictor
		for i := 0; i < 5; i++ {
			reading := fmt.Sprintf("station%d: %d cm", ctx.Instance, 3*(i+1))
			if err := port.SendTo("predictor", []byte(reading)); err != nil {
				return err
			}
		}
		return nil
	}))

	// User collector: one manual observation from a workstation.
	must(reg.Register("/apps/snow/usercollect.vce", func(ctx vce.ProgContext) error {
		ch := ctx.Hub.Channel("obs")
		port, err := ch.CreatePort("usercollect")
		if err != nil {
			return err
		}
		waitForPeers(ch, 4)
		return port.SendTo("predictor", []byte("spotter report: 5 cm"))
	}))

	// Predictor: consumes 11 observations (2 collectors x 5 + 1 user),
	// produces a forecast on the "viz" channel.
	must(reg.Register("/apps/snow/predictor.vce", func(ctx vce.ProgContext) error {
		obs := ctx.Hub.Channel("obs")
		in, err := obs.CreatePort("predictor")
		if err != nil {
			return err
		}
		total := 0
		for i := 0; i < 11; i++ {
			m, ok := in.Recv()
			if !ok {
				return fmt.Errorf("obs channel closed early")
			}
			var station string
			var cm int
			if _, err := fmt.Sscanf(string(m.Payload), "%s %d cm", &station, &cm); err == nil {
				total += cm
			}
		}
		viz := ctx.Hub.Channel("viz")
		out, err := viz.CreatePort("predictor-out")
		if err != nil {
			return err
		}
		waitForPeers(viz, 2) // display must be listening
		forecast := fmt.Sprintf("accumulated snowfall %d cm: expect %s", total,
			map[bool]string{true: "heavy snow", false: "flurries"}[total > 60])
		return out.SendTo("display", []byte(forecast))
	}))

	// Display: runs LOCAL on the user's workstation.
	must(reg.Register("/apps/snow/display.vce", func(ctx vce.ProgContext) error {
		viz := ctx.Hub.Channel("viz")
		port, err := viz.CreatePort("display")
		if err != nil {
			return err
		}
		m, ok := port.Recv()
		if !ok {
			return fmt.Errorf("viz channel closed early")
		}
		fmt.Printf("FORECAST (on %s): %s\n", ctx.Machine, m.Payload)
		return nil
	}))

	// The §5 script, extended with the paper's future vocabulary: a
	// conditional that falls back to the MIMD group if no synchronous
	// machine is available, and explicit communication requirements.
	src := `# weather forecasting application (paper §5)
ASYNC 2 "/apps/snow/collector.vce"
WORKSTATION 1 "/apps/snow/usercollect.vce"
IF AVAIL(SYNC) >= 1 THEN
  SYNC 1 "/apps/snow/predictor.vce"
ELSE
  ASYNC 1 "/apps/snow/predictor.vce"
ENDIF
LOCAL "/apps/snow/display.vce"
COMM "/apps/snow/collector.vce" -> "/apps/snow/predictor.vce" CHANNEL obs
COMM "/apps/snow/predictor.vce" -> "/apps/snow/display.vce" CHANNEL viz
HINT "/apps/snow/predictor.vce" RUNTIME 120s`

	report, err := env.RunScript("snow", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplacements:")
	for _, p := range report.Placements {
		fmt.Printf("  %-12s instance %d -> %s\n", p.Task, p.Instance, p.Machine)
	}
}
