// Quickstart: build an in-memory VCE with a small workstation group,
// register a program, and run a one-line application description.
package main

import (
	"fmt"
	"log"

	"vce"
)

func main() {
	env := vce.New(vce.Options{})
	defer env.Shutdown()

	// Three workstations join the WORKSTATION group; the first founds it
	// and acts as group leader.
	for i := 0; i < 3; i++ {
		m := vce.Machine{
			Name:  fmt.Sprintf("ws%d", i),
			Class: vce.Workstation,
			Speed: 1.0,
			OS:    "unix",
		}
		if _, err := env.AddMachine(m, vce.MachineConfig{}); err != nil {
			log.Fatal(err)
		}
	}

	// Register the application's single module. In the 1994 prototype
	// this would be an object file on a shared file system; here it is an
	// opaque Go function the runtime manager dispatches and monitors.
	err := env.Registry().Register("/apps/hello.vce", func(ctx vce.ProgContext) error {
		fmt.Printf("hello from instance %d on machine %s\n", ctx.Instance, ctx.Machine)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The §5 application description: two instances on the workstation
	// group. The group leader broadcasts the request, collects bids, and
	// the two least-loaded machines win.
	report, err := env.RunScript("hello", `WORKSTATION 2 "/apps/hello.vce"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplication %q: %d instances on machines %v in %d wave(s)\n",
		report.App, len(report.Placements), report.MachinesUsed(), report.Waves)
}
