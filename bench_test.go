// Benchmarks regenerating every experiment in DESIGN.md §9. Each bench runs
// the full harness (workload generation, execution, table production, shape
// validation); -bench=. therefore reproduces the complete evaluation. Tables
// print once per bench under -v via b.Log.
package vce_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"vce/internal/experiments"
	"vce/internal/scenario"
)

func benchExperiment(b *testing.B, run func() (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table.String())
			for _, n := range res.Notes {
				b.Log(n)
			}
		}
	}
}

// BenchmarkE1Pipeline regenerates E1 (Figure 1: the SDM→EXM pipeline on the
// §5 weather application).
func BenchmarkE1Pipeline(b *testing.B) { benchExperiment(b, experiments.E1Pipeline) }

// BenchmarkE2Proxy regenerates E2 (Figure 2: proxy invocation overhead).
func BenchmarkE2Proxy(b *testing.B) { benchExperiment(b, experiments.E2Proxy) }

// BenchmarkE3Bidding regenerates E3 (Figure 3: the bidding mechanism).
func BenchmarkE3Bidding(b *testing.B) { benchExperiment(b, experiments.E3Bidding) }

// BenchmarkE3aCrashedBidder regenerates the reply-collection ablation.
func BenchmarkE3aCrashedBidder(b *testing.B) { benchExperiment(b, experiments.E3aCrashedBidder) }

// BenchmarkE4Failover regenerates E4 (§5 leader failover).
func BenchmarkE4Failover(b *testing.B) { benchExperiment(b, experiments.E4Failover) }

// BenchmarkE5Placement regenerates E5 (§4.3 placement policy comparison).
func BenchmarkE5Placement(b *testing.B) { benchExperiment(b, experiments.E5Placement) }

// BenchmarkE6Aging regenerates E6 (§4.3 starvation prevention).
func BenchmarkE6Aging(b *testing.B) { benchExperiment(b, experiments.E6Aging) }

// BenchmarkE7Migration regenerates E7 (§4.4 migration strategies).
func BenchmarkE7Migration(b *testing.B) { benchExperiment(b, experiments.E7Migration) }

// BenchmarkE7aCheckpointInterval regenerates the checkpoint-interval sweep.
func BenchmarkE7aCheckpointInterval(b *testing.B) {
	benchExperiment(b, experiments.E7aCheckpointInterval)
}

// BenchmarkE8Ripple regenerates E8 (§4.3 suspension ripple effect).
func BenchmarkE8Ripple(b *testing.B) { benchExperiment(b, experiments.E8Ripple) }

// BenchmarkE9FreeParallelism regenerates E9 (§4.5 free parallelism).
func BenchmarkE9FreeParallelism(b *testing.B) { benchExperiment(b, experiments.E9FreeParallelism) }

// BenchmarkE10Anticipatory regenerates E10 (§4.5 anticipatory processing).
func BenchmarkE10Anticipatory(b *testing.B) { benchExperiment(b, experiments.E10Anticipatory) }

// BenchmarkE10aReplicationFanout regenerates the replication-fanout sweep.
func BenchmarkE10aReplicationFanout(b *testing.B) {
	benchExperiment(b, experiments.E10aReplicationFanout)
}

// BenchmarkE11Redundant regenerates E11 (§4.4 redundant execution).
func BenchmarkE11Redundant(b *testing.B) { benchExperiment(b, experiments.E11Redundant) }

// BenchmarkE12Concurrency regenerates E12 (§5 concurrent execution programs).
func BenchmarkE12Concurrency(b *testing.B) { benchExperiment(b, experiments.E12Concurrency) }

// BenchmarkE7bAdaptivePicker regenerates the adaptive-selection ablation.
func BenchmarkE7bAdaptivePicker(b *testing.B) { benchExperiment(b, experiments.E7bAdaptivePicker) }

// BenchmarkE13Utilization regenerates E13 (§4.3 utilization/throughput).
func BenchmarkE13Utilization(b *testing.B) { benchExperiment(b, experiments.E13Utilization) }

// BenchmarkScenarioEngine measures the parallel scenario executor on a
// multi-seed hetero-baseline sweep (6 matrix cells × 24 seeds = 144 jobs)
// at increasing worker counts. workers=1 is the serial baseline; on an
// N-core machine the wider rows should approach an N-fold wall-clock
// speedup, and every row produces the byte-identical report (the merge is
// order-free). The grid is deliberately wide — 144 jobs of a few hundred
// microseconds each — so per-sweep fixed costs (spec expansion, report
// merge) are amortized and the rows measure the pool, not the setup; on a
// single-CPU box (GOMAXPROCS=1) the rows stay flat by construction, see
// DESIGN.md §5.
func BenchmarkScenarioEngine(b *testing.B) {
	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sp, err := scenario.Builtin("hetero-baseline")
			if err != nil {
				b.Fatal(err)
			}
			sp.Runs = 24
			for i := 0; i < b.N; i++ {
				rep, err := scenario.RunContext(context.Background(), sp, scenario.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if got := len(rep.Cells); got != 6 {
					b.Fatalf("got %d cells, want 6", got)
				}
			}
		})
	}
}
