module vce

go 1.24
