module vce

go 1.22
