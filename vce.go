// Package vce is the public face of this reproduction of "The Virtual
// Computing Environment" (Rousselle, Tymann, Hariri, Fox — NPAC, Syracuse
// University, 1994): a metacomputing system that aggregates a heterogeneous
// network of machines into one virtual computer.
//
// A VCE application is a task graph (see the §5 script language or the SDM
// specification API), annotated by the Software Development Module and run
// by the Execution Module: per-machine daemons organized into
// architecture-class groups, a bidding protocol for placement, channels and
// proxies for communication, and migration/anticipatory-processing machinery
// for load balancing.
//
// Quick start:
//
//	env := vce.New(vce.Options{})
//	defer env.Shutdown()
//	env.AddMachine(vce.Machine{Name: "ws0", Class: vce.Workstation, Speed: 1, OS: "unix"}, vce.MachineConfig{})
//	env.Registry().Register("/apps/hello.vce", func(ctx vce.ProgContext) error {
//		fmt.Println("hello from", ctx.Machine)
//		return nil
//	})
//	report, err := env.RunScript("hello", `WORKSTATION 1 "/apps/hello.vce"`)
//
// The internal packages carry the substrates: internal/isis (the group
// toolkit the prototype was built on), internal/sim (the discrete-event
// cluster used by the experiments), internal/migrate (the four §4.4
// migration strategies), and the rest of the inventory in DESIGN.md.
package vce

import (
	"vce/internal/arch"
	"vce/internal/core"
	"vce/internal/exm"
	"vce/internal/isis"
	"vce/internal/sdm"
	"vce/internal/taskgraph"
)

// Environment is a live virtual computing environment.
type Environment = core.VCE

// Options configures an Environment.
type Options = core.Options

// MachineConfig tunes one machine's daemon.
type MachineConfig = core.MachineConfig

// Machine describes one computer in the VCE network.
type Machine = arch.Machine

// Class is a machine architecture class.
type Class = arch.Class

// Machine architecture classes (§5's groups).
const (
	// SIMD machines (CM-5, MasPar MP-1 in the paper's examples).
	SIMD = arch.SIMD
	// MIMD machines with asynchronous architectures.
	MIMD = arch.MIMD
	// Vector supercomputers.
	Vector = arch.Vector
	// Workstation is a general-purpose Unix workstation.
	Workstation = arch.Workstation
)

// ProgContext is the environment a VCE program instance runs in.
type ProgContext = exm.ProgContext

// Program is an executable VCE module.
type Program = exm.Program

// RunReport summarizes one application execution.
type RunReport = exm.RunReport

// Placement records where one task instance ran.
type Placement = exm.Placement

// Spec is an SDM problem specification (the §3.1.1 problem-specification
// layer's input).
type Spec = sdm.Spec

// TaskSpec describes one functional component in a Spec.
type TaskSpec = sdm.TaskSpec

// Flow is a communication relationship between two tasks.
type Flow = sdm.Flow

// Dep is a synchronization relationship between two tasks.
type Dep = sdm.Dep

// Graph is an annotated task graph (§3.1).
type Graph = taskgraph.Graph

// Task is one node of a task graph.
type Task = taskgraph.Task

// IsisConfig tunes group membership (heartbeats, failure detection).
type IsisConfig = isis.Config

// New constructs an empty environment. The zero Options give an in-memory
// single-process deployment suitable for examples and tests; see cmd/vced
// for the TCP deployment.
func New(opts Options) *Environment { return core.New(opts) }
